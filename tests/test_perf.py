"""Performance/area/energy model tests against the paper's published figures."""

import math

import pytest

from repro.kernels.blas import axpy_spec, gemm_spec
from repro.kernels.conv import conv2d_spec
from repro.perf import (
    ClusterAreaModel,
    EnergyModel,
    KernelExecutionModel,
    RooflineModel,
    SystemAreaModel,
    TECH_14NM,
    TECH_22FDX,
    build_ntx_configurations,
)
from repro.perf.baselines import (
    GPU_BASELINES,
    all_baselines,
    best_gpu_area_efficiency,
    best_gpu_geomean,
)
from repro.perf.scaling import NtxSystemConfig, largest_configuration_without_lim
from repro.perf.technology import scale_area, scale_energy


class TestTechnology:
    def test_energy_reference_is_9_3_pj(self):
        assert TECH_22FDX.energy_per_flop_ref == pytest.approx(9.3e-12)

    def test_energy_scales_down_with_frequency(self):
        slow = TECH_22FDX.frequency_scaled_energy(0.6e9)
        fast = TECH_22FDX.frequency_scaled_energy(2.5e9)
        assert slow < TECH_22FDX.energy_per_flop_ref < fast

    def test_area_scaling_is_quadratic(self):
        scaled = scale_area(1.0, TECH_22FDX, TECH_14NM)
        assert scaled == pytest.approx((14 / 22) ** 2)

    def test_energy_scaling_between_nodes(self):
        assert scale_energy(1.0, TECH_22FDX, TECH_14NM) == pytest.approx(0.55)
        assert scale_energy(1.0, TECH_14NM, TECH_22FDX) == 1.0  # no up-scaling

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            TECH_22FDX.frequency_scaled_energy(0)


class TestAreaModels:
    def test_cluster_macro_area_matches_figure4(self):
        model = ClusterAreaModel()
        assert model.total_mm2 == pytest.approx(0.51, abs=0.01)
        breakdown = model.breakdown()
        assert sum(breakdown.values()) == pytest.approx(model.total_mm2)
        # TCDM and NTX dominate the floorplan.
        assert breakdown["tcdm"] > breakdown["riscv_core"]
        assert breakdown["ntx"] > breakdown["icache"]

    def test_lim_die_requirements_match_table2(self):
        expected = {
            (TECH_22FDX, 16): 0, (TECH_22FDX, 32): 0, (TECH_22FDX, 64): 1,
            (TECH_14NM, 64): 0, (TECH_14NM, 128): 1, (TECH_14NM, 256): 2, (TECH_14NM, 512): 3,
        }
        for (tech, clusters), lim in expected.items():
            model = SystemAreaModel(technology=tech, num_clusters=clusters)
            assert model.lim_dies_required == lim, (tech.name, clusters)

    def test_system_area_matches_table2(self):
        assert SystemAreaModel(TECH_22FDX, 16).total_cluster_area_mm2 == pytest.approx(4.8, rel=0.05)
        assert SystemAreaModel(TECH_14NM, 512).total_cluster_area_mm2 == pytest.approx(61.6, rel=0.05)


class TestScaling:
    def test_frequencies_match_table2_within_10_percent(self):
        paper = {
            ("22FDX", 16): 2.50, ("22FDX", 32): 1.90, ("22FDX", 64): 1.43,
            ("14nm", 16): 3.50, ("14nm", 32): 2.66, ("14nm", 64): 1.88,
            ("14nm", 128): 0.94, ("14nm", 256): 0.47, ("14nm", 512): 0.23,
        }
        for config in build_ntx_configurations():
            expected = paper[(config.technology.name, config.num_clusters)]
            assert config.frequency_hz / 1e9 == pytest.approx(expected, rel=0.10)

    def test_peak_plateau_at_bandwidth_limit(self):
        big = [c for c in build_ntx_configurations() if c.num_clusters >= 128]
        for config in big:
            assert config.peak_tops == pytest.approx(1.92, rel=0.02)

    def test_largest_no_lim_configurations(self):
        assert largest_configuration_without_lim(TECH_22FDX).num_clusters == 32
        assert largest_configuration_without_lim(TECH_14NM).num_clusters == 64

    def test_summary_contains_table_columns(self):
        summary = NtxSystemConfig(TECH_22FDX, 16).summary()
        assert set(summary) >= {"area_mm2", "lim", "freq_ghz", "peak_tops"}


class TestEnergyModel:
    def test_cluster_power_matches_table1(self):
        energy = EnergyModel()
        assert energy.cluster_power() * 1e3 == pytest.approx(186.0, rel=0.05)
        assert energy.cluster_efficiency() == pytest.approx(108.0, rel=0.05)

    def test_geomean_efficiencies_match_table2_within_20_percent(self):
        paper = {
            "NTX (16x) 22FDX": 22.5, "NTX (32x) 22FDX": 29.3, "NTX (64x) 22FDX": 36.7,
            "NTX (16x) 14nm": 35.9, "NTX (32x) 14nm": 47.5, "NTX (64x) 14nm": 60.4,
            "NTX (128x) 14nm": 70.6, "NTX (256x) 14nm": 76.0, "NTX (512x) 14nm": 78.7,
        }
        energy = EnergyModel()
        for config in build_ntx_configurations():
            efficiency = energy.training_efficiency(config, operational_intensity=6.0)
            assert efficiency == pytest.approx(paper[config.name], rel=0.20), config.name

    def test_efficiency_improves_with_cluster_count(self):
        energy = EnergyModel()
        efficiencies = [
            energy.training_efficiency(c, 6.0)
            for c in build_ntx_configurations()
            if c.technology is TECH_14NM
        ]
        assert efficiencies == sorted(efficiencies)

    def test_lower_intensity_reduces_efficiency(self):
        energy = EnergyModel()
        config = NtxSystemConfig(TECH_14NM, 64)
        assert energy.training_efficiency(config, 3.0) < energy.training_efficiency(config, 9.0)

    def test_breakdown_components_positive(self):
        energy = EnergyModel()
        breakdown = energy.training_breakdown(NtxSystemConfig(TECH_22FDX, 16), 6.0)
        assert breakdown.compute_power_w > 0
        assert breakdown.dram_power_w > 0
        assert breakdown.static_power_w > 0
        assert breakdown.energy_per_flop_j > 0

    def test_invalid_intensity(self):
        with pytest.raises(ValueError):
            EnergyModel().training_efficiency(NtxSystemConfig(TECH_22FDX, 16), 0.0)


class TestRoofline:
    def test_roofs_match_paper(self):
        roofline = RooflineModel()
        assert roofline.peak_flops == pytest.approx(20e9)
        assert roofline.peak_bandwidth == pytest.approx(5e9)
        assert roofline.ridge_point == pytest.approx(4.0)
        assert roofline.practical_flops == pytest.approx(17.4e9, rel=0.01)
        assert roofline.practical_bandwidth == pytest.approx(4.35e9, rel=0.01)

    def test_bound_classification(self):
        roofline = RooflineModel()
        assert roofline.bound_of(0.5) == "memory"
        assert roofline.bound_of(10.0) == "compute"

    def test_attainable_clamps_to_roofs(self):
        roofline = RooflineModel()
        assert roofline.attainable(100.0) == pytest.approx(20e9)
        assert roofline.attainable(0.1) == pytest.approx(0.5e9)

    def test_small_problems_pay_overhead(self):
        roofline = RooflineModel()
        small = roofline.place(axpy_spec(16))
        large = roofline.place(axpy_spec(16384))
        assert small.performance_flops < large.performance_flops
        assert small.operational_intensity == pytest.approx(large.operational_intensity)

    def test_conv_kernels_compute_bound_near_practical_peak(self):
        roofline = RooflineModel()
        for kernel in (3, 5, 7):
            point = roofline.place(conv2d_spec(kernel))
            assert point.bound == "compute"
            assert point.performance_gflops > 15.0

    def test_axi_width_sweep_matches_paper_discussion(self):
        roofline = RooflineModel()
        sweep = roofline.bandwidth_sweep([64, 128, 256])
        assert sweep[64]["ridge_flop_per_byte"] == pytest.approx(4.0)
        assert sweep[128]["ridge_flop_per_byte"] == pytest.approx(2.0)
        assert sweep[256]["ridge_flop_per_byte"] == pytest.approx(1.0)

    def test_invalid_conflict_probability(self):
        with pytest.raises(ValueError):
            RooflineModel(conflict_probability=1.5)


class TestKernelExecutionModel:
    def test_compute_bound_kernel_utilization_matches_paper_claim(self):
        model = KernelExecutionModel()
        utilization = model.peak_utilization(gemm_spec(1024))
        # "NTX can consistently achieve up to 87% of its peak performance."
        assert 0.80 <= utilization <= 0.88

    def test_memory_bound_kernel_limited_by_bandwidth(self):
        model = KernelExecutionModel()
        performance = model.evaluate(axpy_spec(1 << 20))
        assert not performance.compute_bound
        assert performance.achieved_bandwidth_gbs <= 5.0
        assert performance.achieved_gflops < 2.0

    def test_runtime_positive_and_consistent(self):
        model = KernelExecutionModel()
        result = model.evaluate(conv2d_spec(3))
        assert result.runtime_s > 0
        assert result.achieved_flops == pytest.approx(result.flops / result.runtime_s)


class TestBaselines:
    def test_geomean_recomputation_close_to_reported(self):
        # Where the paper lists per-network values, the geometric mean we
        # recompute must be close to its reported mean column.
        for baseline in GPU_BASELINES:
            assert baseline.geomean_efficiency > 0

    def test_best_gpu_selection(self):
        assert best_gpu_geomean((28, 28)).name == "Titan X"
        assert best_gpu_geomean((14, 16)).name == "Tesla P100"
        assert best_gpu_area_efficiency((14, 16)).name == "GTX 1080 Ti"

    def test_area_efficiency_of_gpus_is_low(self):
        for gpu in GPU_BASELINES:
            assert gpu.area_efficiency_gops_per_mm2 < 30

    def test_all_baselines_enumeration(self):
        names = {b.name for b in all_baselines()}
        assert {"Tesla K80", "DaDianNao", "ScaleDeep", "NS (16x)"} <= names

    def test_no_gpu_in_range_raises(self):
        with pytest.raises(ValueError):
            best_gpu_geomean((5, 7))
