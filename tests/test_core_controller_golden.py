"""Controller micro-op stream and golden-model equivalence of the executors."""

import numpy as np
import pytest

from repro.core.commands import (
    AguConfig,
    InitSource,
    LoopConfig,
    NtxCommand,
    NtxOpcode,
)
from repro.core.controller import NtxController
from repro.core.golden import GoldenMemory, golden_address, golden_execute
from repro.core.ntx import Ntx


def _axpy_command(n, a_addr, x_addr, y_addr):
    return NtxCommand(
        opcode=NtxOpcode.MAC,
        loops=LoopConfig.nest(n),
        agu0=AguConfig(base=x_addr, strides=(4, 0, 0, 0, 0)),
        agu1=AguConfig.stationary(a_addr),
        agu2=AguConfig(base=y_addr, strides=(4, 0, 0, 0, 0)),
        init_level=0,
        store_level=0,
        init_source=InitSource.AGU2,
    )


class TestController:
    def test_micro_op_count_matches_command(self):
        command = _axpy_command(10, 0, 100, 200)
        controller = NtxController(command)
        ops = list(controller.micro_ops())
        assert len(ops) == command.total_iterations
        assert ops[-1].last and not ops[0].last

    def test_elementwise_init_and_store_every_iteration(self):
        command = _axpy_command(4, 0, 100, 200)
        ops = list(NtxController(command).micro_ops())
        assert all(op.init for op in ops)
        assert [op.store for op in ops] == [200, 204, 208, 212]
        assert [op.init_read for op in ops] == [200, 204, 208, 212]

    def test_reduction_stores_once(self):
        command = NtxCommand(
            opcode=NtxOpcode.MAC,
            loops=LoopConfig.nest(8),
            agu0=AguConfig.linear(0),
            agu1=AguConfig.linear(64),
            agu2=AguConfig.stationary(256),
            init_level=1,
            store_level=1,
        )
        ops = list(NtxController(command).micro_ops())
        stores = [op.store for op in ops if op.store is not None]
        assert stores == [256]
        assert sum(op.init for op in ops) == 1

    def test_addresses_match_closed_form(self):
        command = NtxCommand(
            opcode=NtxOpcode.MAC,
            loops=LoopConfig.nest(3, 4, 2),
            agu0=AguConfig(base=16, strides=(4, 20, -8, 0, 0)),
            agu1=AguConfig(base=0, strides=(8, -16, 4, 0, 0)),
            agu2=AguConfig(base=96, strides=(0, 4, 12, 0, 0)),
            init_level=1,
            store_level=1,
        )
        counts = command.loops.enabled_counts
        controller = NtxController(command)
        for t, op in enumerate(controller.micro_ops()):
            assert op.read0 == golden_address(command.agu0, counts, t)
            assert op.read1 == golden_address(command.agu1, counts, t)


class TestExecutorAgainstGolden:
    @pytest.mark.parametrize("opcode", list(NtxOpcode))
    def test_every_opcode_matches_golden(self, opcode, rng):
        n, blocks = 6, 3
        elementwise = not opcode.is_reduction
        command = NtxCommand(
            opcode=opcode,
            loops=LoopConfig.nest(n, blocks),
            agu0=AguConfig(base=0x000, strides=(4, 4, 0, 0, 0)),
            agu1=AguConfig(base=0x100, strides=(4, 4, 0, 0, 0)),
            agu2=AguConfig(
                base=0x200,
                strides=((4, 4, 0, 0, 0) if elementwise else (0, 4, 0, 0, 0)),
            ),
            init_level=0 if elementwise else 1,
            store_level=0 if elementwise else 1,
            scalar=0.75,
        )
        values = {}
        for i in range(n * blocks):
            values[0x000 + 4 * i] = float(np.float32(rng.standard_normal()))
            values[0x100 + 4 * i] = float(np.float32(rng.standard_normal()))

        golden_mem = GoldenMemory(dict(values))
        golden_execute(command, golden_mem)

        ntx_mem = GoldenMemory(dict(values))
        Ntx().execute(command, ntx_mem)

        store_addresses = {
            addr for addr in golden_mem.words if addr >= 0x200
        }
        assert store_addresses, "command under test must write something"
        for addr in store_addresses:
            assert ntx_mem.read_f32(addr) == pytest.approx(
                golden_mem.read_f32(addr), rel=1e-6, abs=1e-6
            )

    def test_gemv_against_golden_and_numpy(self, rng):
        rows, cols = 5, 7
        matrix = rng.standard_normal((rows, cols)).astype(np.float32)
        x = rng.standard_normal(cols).astype(np.float32)
        a_base, x_base, y_base = 0x0, 0x400, 0x600
        values = {}
        for i, value in enumerate(matrix.ravel()):
            values[a_base + 4 * i] = float(value)
        for i, value in enumerate(x):
            values[x_base + 4 * i] = float(value)
        command = NtxCommand(
            opcode=NtxOpcode.MAC,
            loops=LoopConfig.nest(cols, rows),
            agu0=AguConfig(base=a_base, strides=(4, 4, 0, 0, 0)),
            agu1=AguConfig(base=x_base, strides=(4, -(cols - 1) * 4, 0, 0, 0)),
            agu2=AguConfig(base=y_base, strides=(0, 4, 0, 0, 0)),
            init_level=1,
            store_level=1,
        )
        memory = GoldenMemory(values)
        Ntx().execute(command, memory)
        result = np.array([memory.read_f32(y_base + 4 * i) for i in range(rows)])
        np.testing.assert_allclose(result, matrix @ x, rtol=1e-5, atol=1e-6)

    def test_stats_accumulate_across_commands(self):
        ntx = Ntx()
        memory = GoldenMemory()
        command = _axpy_command(8, 0x300, 0x000, 0x100)
        ntx.execute(command, memory)
        ntx.execute(command, memory)
        assert ntx.stats.commands == 2
        assert ntx.stats.iterations == 16
        assert ntx.stats.flops == 32
