"""Unit tests for the NTX command description layer."""

import pytest

from repro.core.commands import (
    AguConfig,
    InitSource,
    LoopConfig,
    NtxCommand,
    NtxOpcode,
)


class TestOpcode:
    def test_mac_counts_two_flops(self):
        assert NtxOpcode.MAC.flops_per_element == 2

    def test_data_movement_counts_zero_flops(self):
        assert NtxOpcode.COPY.flops_per_element == 0
        assert NtxOpcode.FILL.flops_per_element == 0

    def test_operand_usage(self):
        assert NtxOpcode.MAC.reads_operand0 and NtxOpcode.MAC.reads_operand1
        assert NtxOpcode.RELU.reads_operand0 and not NtxOpcode.RELU.reads_operand1
        assert not NtxOpcode.FILL.reads_operand0

    def test_reduction_classification(self):
        assert NtxOpcode.MAC.is_reduction
        assert NtxOpcode.ARGMAX.is_reduction
        assert not NtxOpcode.ADD.is_reduction


class TestAguConfig:
    def test_linear_and_stationary_helpers(self):
        linear = AguConfig.linear(0x100)
        assert all(s == 4 for s in linear.strides)
        stationary = AguConfig.stationary(0x200)
        assert all(s == 0 for s in stationary.strides)

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            AguConfig(base=1 << 32)

    def test_rejects_wrong_stride_count(self):
        with pytest.raises(ValueError):
            AguConfig(strides=(4, 4))

    def test_rejects_huge_stride(self):
        with pytest.raises(ValueError):
            AguConfig(strides=(1 << 31, 0, 0, 0, 0))


class TestLoopConfig:
    def test_nest_builder(self):
        loops = LoopConfig.nest(10, 20)
        assert loops.enabled_counts == (10, 20)
        assert loops.total_iterations == 200
        assert loops.outer_level == 1

    def test_nest_limits(self):
        with pytest.raises(ValueError):
            LoopConfig.nest()
        with pytest.raises(ValueError):
            LoopConfig.nest(1, 2, 3, 4, 5, 6)

    def test_counter_range(self):
        with pytest.raises(ValueError):
            LoopConfig.nest(0)
        with pytest.raises(ValueError):
            LoopConfig.nest((1 << 16) + 1)
        LoopConfig.nest(1 << 16)  # exactly the counter range is fine

    def test_disabled_loops_ignored(self):
        loops = LoopConfig(counts=(4, 9, 9, 9, 9), outer_level=0)
        assert loops.total_iterations == 4


class TestNtxCommand:
    def _command(self, **kwargs):
        defaults = dict(
            opcode=NtxOpcode.MAC,
            loops=LoopConfig.nest(8, 4),
            init_level=1,
            store_level=1,
        )
        defaults.update(kwargs)
        return NtxCommand(**defaults)

    def test_iteration_and_store_counts(self):
        command = self._command()
        assert command.total_iterations == 32
        assert command.num_stores == 4
        assert command.num_inits == 4

    def test_full_reduction_stores_once(self):
        command = self._command(loops=LoopConfig.nest(16), init_level=1, store_level=1)
        assert command.num_stores == 1

    def test_elementwise_stores_every_iteration(self):
        command = self._command(
            opcode=NtxOpcode.ADD, loops=LoopConfig.nest(10), init_level=0, store_level=0
        )
        assert command.num_stores == 10

    def test_flop_accounting(self):
        command = self._command()
        assert command.flops == 2 * 32

    def test_tcdm_traffic_accounting(self):
        command = self._command(init_source=InitSource.AGU2)
        # MAC: 2 reads per iteration + one init read per block + one store per block.
        assert command.tcdm_reads == 2 * 32 + 4
        assert command.tcdm_writes == 4
        assert command.bytes_moved == 4 * (command.tcdm_reads + command.tcdm_writes)

    def test_store_above_init_rejected(self):
        with pytest.raises(ValueError):
            self._command(init_level=0, store_level=1)

    def test_levels_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            self._command(init_level=3, store_level=0)

    def test_writeback_disable(self):
        command = self._command(writeback=False)
        assert command.num_stores == 0

    def test_with_bases_rebases_only_addresses(self):
        command = self._command()
        rebased = command.with_bases(0x100, 0x200, 0x300)
        assert rebased.agu0.base == 0x100
        assert rebased.agu1.base == 0x200
        assert rebased.agu2.base == 0x300
        assert rebased.loops == command.loops

    def test_iterate_indices_order(self):
        command = self._command(loops=LoopConfig.nest(2, 2), init_level=1, store_level=1)
        assert list(command.iterate_indices()) == [(0, 0), (1, 0), (0, 1), (1, 1)]

    def test_describe_mentions_opcode(self):
        assert "mac" in self._command().describe()
