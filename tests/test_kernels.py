"""Kernel library tests: every kernel against its NumPy reference, plus specs."""

import numpy as np
import pytest

from repro.core.commands import NtxOpcode
from repro.kernels import (
    axpy_reference,
    axpy_spec,
    conv2d_reference,
    conv2d_spec,
    gemm_reference,
    gemm_spec,
    gemv_reference,
    gemv_spec,
    laplace_spec,
    diffusion_spec,
    run_axpy,
    run_conv2d,
    run_conv2d_multichannel,
    run_diffusion,
    run_gemm,
    run_gemv,
    run_laplace,
    run_reduction,
)
from repro.kernels.conv import conv1d_commands, conv2d_multichannel_reference
from repro.kernels.reductions import (
    elementwise_commands,
    fill_command,
    copy_command,
    mask_commands,
    relu_commands,
    threshold_commands,
)
from repro.kernels.stencil import (
    diffusion_reference,
    laplace_1d_reference,
    laplace_2d_reference,
    laplace_3d_reference,
)


class TestBlas:
    def test_axpy(self, cluster, rng):
        x = rng.standard_normal(300).astype(np.float32)
        y = rng.standard_normal(300).astype(np.float32)
        np.testing.assert_allclose(
            run_axpy(cluster, -1.75, x, y), axpy_reference(-1.75, x, y), rtol=1e-6
        )

    def test_axpy_shape_mismatch(self, cluster):
        with pytest.raises(ValueError):
            run_axpy(cluster, 1.0, np.zeros(4), np.zeros(5))

    def test_gemv_square_and_rectangular(self, cluster, rng):
        for rows, cols in ((8, 8), (5, 13), (16, 3)):
            c = type(cluster)()  # fresh cluster per shape
            matrix = rng.standard_normal((rows, cols)).astype(np.float32)
            x = rng.standard_normal(cols).astype(np.float32)
            np.testing.assert_allclose(
                run_gemv(c, matrix, x), gemv_reference(matrix, x), rtol=1e-4, atol=1e-5
            )

    def test_gemv_accumulate(self, cluster, rng):
        matrix = rng.standard_normal((6, 9)).astype(np.float32)
        x = rng.standard_normal(9).astype(np.float32)
        y = rng.standard_normal(6).astype(np.float32)
        np.testing.assert_allclose(
            run_gemv(cluster, matrix, x, y), gemv_reference(matrix, x, y), rtol=1e-4, atol=1e-5
        )

    def test_gemm(self, cluster, rng):
        a = rng.standard_normal((10, 6)).astype(np.float32)
        b = rng.standard_normal((6, 12)).astype(np.float32)
        np.testing.assert_allclose(
            run_gemm(cluster, a, b), gemm_reference(a, b), rtol=1e-4, atol=1e-5
        )

    def test_gemm_accumulate_and_split(self, cluster, rng):
        a = rng.standard_normal((9, 5)).astype(np.float32)
        b = rng.standard_normal((5, 7)).astype(np.float32)
        c = rng.standard_normal((9, 7)).astype(np.float32)
        np.testing.assert_allclose(
            run_gemm(cluster, a, b, c, split_rows=4),
            gemm_reference(a, b, c),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_gemm_dimension_mismatch(self, cluster, rng):
        with pytest.raises(ValueError):
            run_gemm(cluster, np.zeros((3, 4)), np.zeros((5, 6)))

    def test_blas_specs_operational_intensity(self):
        assert axpy_spec(1 << 14).operational_intensity == pytest.approx(1 / 6)
        assert gemv_spec(1 << 14).operational_intensity == pytest.approx(0.5, abs=0.01)
        gemm_small = gemm_spec(16)
        gemm_large = gemm_spec(1024)
        assert gemm_large.operational_intensity > gemm_small.operational_intensity
        # GEMM 1024 sits deep in the compute-bound region of Figure 5.
        assert gemm_large.operational_intensity > 10 * 4.0


class TestConvolutions:
    @pytest.mark.parametrize("kernel", [3, 5, 7])
    def test_single_channel_conv(self, rng, kernel):
        from repro.cluster.cluster import Cluster

        cluster = Cluster()
        img = rng.standard_normal((kernel + 9, kernel + 11)).astype(np.float32)
        weights = rng.standard_normal((kernel, kernel)).astype(np.float32)
        np.testing.assert_allclose(
            run_conv2d(cluster, img, weights),
            conv2d_reference(img, weights),
            rtol=1e-4,
            atol=1e-5,
        )

    def test_multichannel_conv(self, cluster, rng):
        img = rng.standard_normal((4, 9, 10)).astype(np.float32)
        weights = rng.standard_normal((4, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(
            run_conv2d_multichannel(cluster, img, weights),
            conv2d_multichannel_reference(img, weights),
            rtol=1e-4,
            atol=1e-4,
        )

    def test_kernel_larger_than_image_rejected(self, cluster):
        with pytest.raises(ValueError):
            run_conv2d(cluster, np.zeros((2, 2), np.float32), np.zeros((3, 3), np.float32))

    def test_conv1d_commands_flop_accounting(self):
        commands = conv1d_commands(100, 3, 0, 0x400, 0x500)
        assert commands[0].flops == 2 * 3 * 100
        assert commands[0].num_stores == 100

    def test_conv_spec_reuse_grows_with_kernel(self):
        assert conv2d_spec(7).operational_intensity > conv2d_spec(5).operational_intensity
        assert conv2d_spec(5).operational_intensity > conv2d_spec(3).operational_intensity
        # DNN-style accounting places even 3x3 in the compute-bound region (>4 flop/B).
        assert conv2d_spec(3).operational_intensity > 4.0


class TestStencils:
    def test_laplace_1d(self, cluster, rng):
        field = rng.standard_normal(100).astype(np.float32)
        np.testing.assert_allclose(
            run_laplace(cluster, field), laplace_1d_reference(field), rtol=1e-4, atol=1e-5
        )

    def test_laplace_2d(self, cluster, rng):
        field = rng.standard_normal((12, 15)).astype(np.float32)
        np.testing.assert_allclose(
            run_laplace(cluster, field), laplace_2d_reference(field), rtol=1e-4, atol=1e-4
        )

    def test_laplace_3d(self, cluster, rng):
        field = rng.standard_normal((7, 8, 9)).astype(np.float32)
        np.testing.assert_allclose(
            run_laplace(cluster, field), laplace_3d_reference(field), rtol=1e-4, atol=1e-4
        )

    def test_diffusion(self, cluster, rng):
        field = rng.standard_normal((10, 9, 8)).astype(np.float32)
        np.testing.assert_allclose(
            run_diffusion(cluster, field), diffusion_reference(field), rtol=1e-3, atol=1e-4
        )

    def test_field_too_small_rejected(self, cluster):
        with pytest.raises(ValueError):
            run_laplace(cluster, np.zeros((2, 2), np.float32))

    def test_stencil_specs_are_memory_bound(self):
        # All stencils sit left of the 4 flop/B ridge point (Figure 5).
        for spec in (laplace_spec(1), laplace_spec(2), laplace_spec(3), diffusion_spec()):
            assert spec.operational_intensity < 4.0

    def test_diffusion_has_13_coefficients_worth_of_work(self):
        spec = diffusion_spec(points=1000)
        assert spec.flops == 2 * 13 * 1000


class TestReductions:
    def test_scalar_reductions(self, rng):
        from repro.cluster.cluster import Cluster

        data = rng.standard_normal(500).astype(np.float32)
        assert run_reduction(Cluster(), "sum", data) == pytest.approx(
            float(np.sum(data.astype(np.float64))), rel=1e-5
        )
        assert run_reduction(Cluster(), "max", data) == float(np.max(data))
        assert run_reduction(Cluster(), "min", data) == float(np.min(data))
        assert run_reduction(Cluster(), "argmax", data) == float(np.argmax(data))
        assert run_reduction(Cluster(), "argmin", data) == float(np.argmin(data))

    def test_unknown_reduction(self, cluster, rng):
        with pytest.raises(ValueError):
            run_reduction(cluster, "median", rng.standard_normal(8))

    def test_elementwise_builders(self, cluster, rng):
        n = 40
        a = rng.standard_normal(n).astype(np.float32)
        b = rng.standard_normal(n).astype(np.float32)
        a_addr, b_addr, out_addr = cluster.tcdm.alloc_layout([n * 4] * 3)
        cluster.stage_in(a_addr, a)
        cluster.stage_in(b_addr, b)
        for opcode, expected in (
            (NtxOpcode.ADD, a + b),
            (NtxOpcode.SUB, a - b),
            (NtxOpcode.MUL, a * b),
        ):
            for command in elementwise_commands(opcode, n, a_addr, b_addr, out_addr):
                cluster.offload(command)
            np.testing.assert_allclose(
                cluster.stage_out(out_addr, (n,)), expected.astype(np.float32), rtol=1e-6
            )

    def test_elementwise_rejects_reductions(self):
        with pytest.raises(ValueError):
            elementwise_commands(NtxOpcode.MAC, 4, 0, 0, 0)

    def test_relu_threshold_mask(self, cluster, rng):
        n = 32
        data = rng.standard_normal(n).astype(np.float32)
        mask = (rng.standard_normal(n) > 0).astype(np.float32)
        d_addr, m_addr, out_addr = cluster.tcdm.alloc_layout([n * 4] * 3)
        cluster.stage_in(d_addr, data)
        cluster.stage_in(m_addr, mask)

        for command in relu_commands(n, d_addr, out_addr):
            cluster.offload(command)
        np.testing.assert_array_equal(
            cluster.stage_out(out_addr, (n,)), np.maximum(data, 0.0)
        )

        for command in threshold_commands(n, d_addr, out_addr, 0.25):
            cluster.offload(command)
        np.testing.assert_array_equal(
            cluster.stage_out(out_addr, (n,)), (data > 0.25).astype(np.float32)
        )

        for command in mask_commands(n, d_addr, m_addr, out_addr):
            cluster.offload(command)
        np.testing.assert_array_equal(
            cluster.stage_out(out_addr, (n,)), data * mask
        )

    def test_copy_and_fill(self, cluster, rng):
        n = 25
        data = rng.standard_normal(n).astype(np.float32)
        src, dst = cluster.tcdm.alloc_layout([n * 4, n * 4])
        cluster.stage_in(src, data)
        cluster.offload(copy_command(n, src, dst))
        np.testing.assert_array_equal(cluster.stage_out(dst, (n,)), data)
        cluster.offload(fill_command(n, dst, -3.0))
        np.testing.assert_array_equal(
            cluster.stage_out(dst, (n,)), np.full(n, -3.0, np.float32)
        )
