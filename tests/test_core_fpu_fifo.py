"""Unit tests for the NTX FPU datapath and the elastic FIFOs."""

import math

import pytest

from repro.core.commands import NtxOpcode
from repro.core.fifo import Fifo
from repro.core.fpu import NtxFpu


class TestFifo:
    def test_push_pop_order(self):
        fifo = Fifo(4)
        for i in range(3):
            assert fifo.push(i)
        assert [fifo.pop() for _ in range(3)] == [0, 1, 2]

    def test_full_rejects_push(self):
        fifo = Fifo(2)
        assert fifo.push(1) and fifo.push(2)
        assert not fifo.push(3)
        assert fifo.stats["full_stalls"] == 1

    def test_empty_pop_returns_none(self):
        fifo = Fifo(1)
        assert fifo.pop() is None
        assert fifo.stats["empty_stalls"] == 1

    def test_peek_and_clear(self):
        fifo = Fifo(2)
        fifo.push("a")
        assert fifo.peek() == "a"
        fifo.clear()
        assert fifo.is_empty

    def test_occupancy_tracking(self):
        fifo = Fifo(3)
        fifo.push(1)
        fifo.push(2)
        assert fifo.stats["max_occupancy"] == 2

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            Fifo(0)


class TestFpuMac:
    def test_mac_reduction(self):
        fpu = NtxFpu()
        fpu.init_block(NtxOpcode.MAC, None)
        for a, b in [(1.0, 2.0), (3.0, 4.0), (0.5, 8.0)]:
            fpu.issue(NtxOpcode.MAC, a, b, 0.0)
        assert fpu.writeback(NtxOpcode.MAC) == 18.0
        assert fpu.stats.macs == 3
        assert fpu.stats.flops == 6

    def test_mac_init_from_memory(self):
        fpu = NtxFpu()
        fpu.init_block(NtxOpcode.MAC, 10.0)
        fpu.issue(NtxOpcode.MAC, 2.0, 3.0, 0.0)
        assert fpu.writeback(NtxOpcode.MAC) == 16.0

    def test_block_reinitialisation_clears_accumulator(self):
        fpu = NtxFpu()
        fpu.init_block(NtxOpcode.MAC, None)
        fpu.issue(NtxOpcode.MAC, 5.0, 5.0, 0.0)
        fpu.init_block(NtxOpcode.MAC, None)
        fpu.issue(NtxOpcode.MAC, 1.0, 1.0, 0.0)
        assert fpu.writeback(NtxOpcode.MAC) == 1.0


class TestFpuComparator:
    def test_max_min(self):
        fpu = NtxFpu()
        fpu.init_block(NtxOpcode.MAX, None)
        for value in (1.0, -3.0, 7.0, 2.0):
            fpu.issue(NtxOpcode.MAX, value, None, 0.0)
        assert fpu.writeback(NtxOpcode.MAX) == 7.0

        fpu.init_block(NtxOpcode.MIN, None)
        for value in (1.0, -3.0, 7.0):
            fpu.issue(NtxOpcode.MIN, value, None, 0.0)
        assert fpu.writeback(NtxOpcode.MIN) == -3.0

    def test_argmax_uses_index_counter(self):
        fpu = NtxFpu()
        fpu.init_block(NtxOpcode.ARGMAX, None)
        for value in (1.0, 9.0, 3.0, 9.0):
            fpu.issue(NtxOpcode.ARGMAX, value, None, 0.0)
        # First occurrence of the maximum wins.
        assert fpu.writeback(NtxOpcode.ARGMAX) == 1.0

    def test_argmin(self):
        fpu = NtxFpu()
        fpu.init_block(NtxOpcode.ARGMIN, None)
        for value in (4.0, -1.0, 0.0):
            fpu.issue(NtxOpcode.ARGMIN, value, None, 0.0)
        assert fpu.writeback(NtxOpcode.ARGMIN) == 1.0

    def test_max_with_all_negative_values(self):
        fpu = NtxFpu()
        fpu.init_block(NtxOpcode.MAX, None)
        for value in (-5.0, -2.0, -9.0):
            fpu.issue(NtxOpcode.MAX, value, None, 0.0)
        assert fpu.writeback(NtxOpcode.MAX) == -2.0


class TestFpuElementwise:
    @pytest.mark.parametrize(
        "opcode,a,b,scalar,expected",
        [
            (NtxOpcode.MUL, 3.0, 4.0, 0.0, 12.0),
            (NtxOpcode.ADD, 3.0, 4.0, 0.0, 7.0),
            (NtxOpcode.SUB, 3.0, 4.0, 0.0, -1.0),
            (NtxOpcode.RELU, -3.0, None, 0.0, 0.0),
            (NtxOpcode.RELU, 3.0, None, 0.0, 3.0),
            (NtxOpcode.THRESHOLD, 3.0, None, 2.0, 1.0),
            (NtxOpcode.THRESHOLD, 1.0, None, 2.0, 0.0),
            (NtxOpcode.MASK, 3.0, 1.0, 0.0, 3.0),
            (NtxOpcode.MASK, 3.0, 0.0, 0.0, 0.0),
            (NtxOpcode.COPY, 5.5, None, 0.0, 5.5),
            (NtxOpcode.FILL, None, None, 2.5, 2.5),
        ],
    )
    def test_single_issue(self, opcode, a, b, scalar, expected):
        fpu = NtxFpu()
        fpu.init_block(opcode, None)
        fpu.issue(opcode, a, b, scalar)
        assert fpu.writeback(opcode) == expected

    def test_results_rounded_to_binary32(self):
        fpu = NtxFpu()
        fpu.init_block(NtxOpcode.ADD, None)
        fpu.issue(NtxOpcode.ADD, 1.0, 2.0**-30, 0.0)
        # A binary32 register cannot hold 1 + 2^-30.
        assert fpu.writeback(NtxOpcode.ADD) == 1.0
