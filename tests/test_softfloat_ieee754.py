"""Unit tests for the bit-exact IEEE-754 binary32 helpers."""

import math
import struct

import numpy as np
import pytest

from repro.softfloat.ieee754 import (
    Float32,
    RoundingMode,
    bits_to_float,
    float_to_bits,
    next_after_bits,
    split_and_round,
    ulp,
)


class TestBitConversions:
    def test_float_to_bits_known_values(self):
        assert float_to_bits(0.0) == 0x00000000
        assert float_to_bits(1.0) == 0x3F800000
        assert float_to_bits(-2.0) == 0xC0000000
        assert float_to_bits(0.5) == 0x3F000000

    def test_bits_to_float_round_trip(self):
        for value in (0.0, 1.0, -1.0, 3.14159, 1e-30, -1e30, 65504.0):
            bits = float_to_bits(value)
            assert float_to_bits(bits_to_float(bits)) == bits

    def test_bits_to_float_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            bits_to_float(1 << 32)

    def test_next_after_increments_magnitude(self):
        bits = float_to_bits(1.0)
        up = next_after_bits(bits, +1)
        assert bits_to_float(up) > 1.0
        down = next_after_bits(bits, -1)
        assert bits_to_float(down) < 1.0

    def test_next_after_from_zero(self):
        smallest = next_after_bits(float_to_bits(0.0), +1)
        assert bits_to_float(smallest) == 2.0**-149

    def test_ulp_of_one(self):
        assert ulp(1.0) == 2.0**-23

    def test_ulp_of_zero_is_smallest_subnormal(self):
        assert ulp(0.0) == 2.0**-149

    def test_ulp_of_inf(self):
        assert math.isinf(ulp(float("inf")))


class TestFloat32Fields:
    def test_parts_of_one(self):
        f = Float32.from_float(1.0)
        assert (f.sign, f.biased_exponent, f.mantissa) == (0, 127, 0)

    def test_from_parts_round_trip(self):
        f = Float32.from_parts(1, 130, 0x400000)
        assert f.to_float() == -12.0

    def test_classification(self):
        assert Float32.from_float(0.0).is_zero
        assert Float32.from_float(1.5).is_normal
        assert Float32(0x00000001).is_subnormal
        assert Float32.inf().is_inf
        assert Float32.nan().is_nan
        assert not Float32.nan().is_finite

    def test_significand_includes_hidden_bit(self):
        assert Float32.from_float(1.0).significand() == 1 << 23
        assert Float32.from_float(1.5).significand() == 3 << 22

    def test_value_reconstruction_from_fields(self, subtests=None):
        for value in (1.0, -3.25, 0.1, 1e-40, 123456.789):
            f = Float32.from_float(value)
            reconstructed = (
                (-1) ** f.sign * f.significand() * 2.0 ** f.unbiased_exponent()
            )
            assert reconstructed == f.to_float()

    def test_invalid_constructions(self):
        with pytest.raises(ValueError):
            Float32(-1)
        with pytest.raises(ValueError):
            Float32.from_parts(2, 0, 0)
        with pytest.raises(ValueError):
            Float32.from_parts(0, 256, 0)
        with pytest.raises(ValueError):
            Float32.from_parts(0, 0, 1 << 23)


class TestExactOperations:
    def test_mul_exact_simple(self):
        a = Float32.from_float(3.0)
        b = Float32.from_float(0.5)
        sig, exp = a.mul_exact(b)
        assert sig * 2.0**exp == 1.5

    def test_mul_exact_sign(self):
        a = Float32.from_float(-2.0)
        b = Float32.from_float(4.0)
        sig, exp = a.mul_exact(b)
        assert sig < 0
        assert sig * 2.0**exp == -8.0

    def test_mul_exact_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Float32.inf().mul_exact(Float32.from_float(1.0))

    def test_to_fixed_round_trip(self):
        f = Float32.from_float(5.75)
        assert f.to_fixed(-10) == int(5.75 * 2**10)

    def test_to_fixed_rejects_precision_loss(self):
        f = Float32.from_float(0.5)
        with pytest.raises(OverflowError):
            f.to_fixed(0)


class TestFromFixed:
    def test_exact_integers(self):
        for value in (1, 2, 3, 255, 1 << 20):
            assert Float32.from_fixed(value, 0).to_float() == float(value)

    def test_negative_values(self):
        assert Float32.from_fixed(-7, 0).to_float() == -7.0

    def test_rounding_to_nearest_even(self):
        # 2^24 + 1 is not representable; ties round to even (down here).
        assert Float32.from_fixed((1 << 24) + 1, 0).to_float() == float(1 << 24)
        # 2^24 + 3 rounds up to 2^24 + 4.
        assert Float32.from_fixed((1 << 24) + 3, 0).to_float() == float((1 << 24) + 4)

    def test_overflow_to_infinity(self):
        assert Float32.from_fixed(1, 200).is_inf

    def test_underflow_to_zero(self):
        assert Float32.from_fixed(1, -400).is_zero

    def test_subnormal_result(self):
        f = Float32.from_fixed(3, -149)
        assert f.is_subnormal
        assert f.to_float() == 3 * 2.0**-149

    def test_matches_numpy_rounding(self):
        rng = np.random.default_rng(1)
        for _ in range(200):
            value = float(rng.standard_normal() * 10.0 ** rng.integers(-20, 20))
            mine = Float32.round_exact(value).to_float()
            theirs = float(np.float32(value))
            assert mine == theirs or (math.isnan(mine) and math.isnan(theirs))

    def test_directed_rounding_modes(self):
        value = (1 << 24) + 1  # halfway between representables
        up = Float32.from_fixed(value, 0, RoundingMode.TOWARD_POSITIVE)
        down = Float32.from_fixed(value, 0, RoundingMode.TOWARD_ZERO)
        assert up.to_float() > down.to_float()


class TestSplitAndRound:
    def test_no_shift(self):
        assert split_and_round(10, 0, 0) == 10

    def test_exact_shift(self):
        assert split_and_round(8, 2, 0) == 2

    def test_round_half_to_even(self):
        assert split_and_round(0b110, 2, 0) == 0b10  # 1.5 -> 2 (even)
        assert split_and_round(0b1010, 2, 0) == 0b10  # 2.5 -> 2 (even)

    def test_directed_modes(self):
        assert split_and_round(5, 1, 0, RoundingMode.TOWARD_ZERO) == 2
        assert split_and_round(5, 1, 0, RoundingMode.TOWARD_POSITIVE) == 3
        assert split_and_round(5, 1, 1, RoundingMode.TOWARD_POSITIVE) == 2
        assert split_and_round(5, 1, 1, RoundingMode.TOWARD_NEGATIVE) == 3
