"""The documentation surface: coverage of the package map, docstring
discipline, link/anchor health and generated-doc freshness."""

import ast
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _subpackages():
    src = REPO / "src" / "repro"
    return sorted(
        path.name for path in src.iterdir() if (path / "__init__.py").is_file()
    )


def test_readme_describes_every_subpackage():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    missing = [
        name for name in _subpackages() if f"repro.{name}" not in readme
    ]
    assert not missing, f"README.md package map is missing: {missing}"


def test_architecture_doc_mentions_every_subpackage():
    doc = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    missing = [name for name in _subpackages() if f"repro.{name}" not in doc]
    assert not missing, f"docs/architecture.md is missing: {missing}"


def test_readme_documents_install_verify_and_cli():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in readme  # tier-1 verify command
    assert "pip install -e ." in readme
    assert "python -m repro.eval" in readme


def test_doc_links_are_healthy():
    result = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_doc_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr


def test_every_public_module_has_a_docstring():
    """Satellite: module-level docstrings are mandatory across the package."""
    missing = []
    for path in sorted((REPO / "src" / "repro").rglob("*.py")):
        if any(part.startswith("_") and part != "__init__.py" for part in path.parts):
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not ast.get_docstring(tree):
            missing.append(str(path.relative_to(REPO)))
    assert not missing, f"modules without a docstring: {missing}"


def test_eval_and_report_public_functions_have_docstrings():
    """The public entry points of the harness/report modules are documented."""
    import importlib
    import inspect

    modules = [
        "repro.eval.table1", "repro.eval.table2", "repro.eval.fig3b",
        "repro.eval.fig5", "repro.eval.fig6", "repro.eval.fig7",
        "repro.eval.precision", "repro.eval.greenwave", "repro.eval.system",
        "repro.eval.report",
        "repro.report.artifact", "repro.report.render",
        "repro.report.runner", "repro.report.reference",
    ]
    missing = []
    for name in modules:
        module = importlib.import_module(name)
        for public in getattr(module, "__all__", []):
            member = getattr(module, public)
            if inspect.isfunction(member) and not inspect.getdoc(member):
                missing.append(f"{name}.{public}")
    assert not missing, f"public functions without a docstring: {missing}"


def test_reference_doc_is_fresh():
    """Satellite/acceptance: docs/reference.md matches a regeneration."""
    from repro.report.reference import generate_reference

    committed = (REPO / "docs" / "reference.md").read_text(encoding="utf-8")
    assert committed == generate_reference(), (
        "docs/reference.md is stale; run python scripts/generate_docs.py"
    )
