"""The documentation surface: coverage of the package map and link health."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _subpackages():
    src = REPO / "src" / "repro"
    return sorted(
        path.name for path in src.iterdir() if (path / "__init__.py").is_file()
    )


def test_readme_describes_every_subpackage():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    missing = [
        name for name in _subpackages() if f"repro.{name}" not in readme
    ]
    assert not missing, f"README.md package map is missing: {missing}"


def test_architecture_doc_mentions_every_subpackage():
    doc = (REPO / "docs" / "architecture.md").read_text(encoding="utf-8")
    missing = [name for name in _subpackages() if f"repro.{name}" not in doc]
    assert not missing, f"docs/architecture.md is missing: {missing}"


def test_readme_documents_install_verify_and_cli():
    readme = (REPO / "README.md").read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in readme  # tier-1 verify command
    assert "pip install -e ." in readme
    assert "python -m repro.eval" in readme


def test_doc_links_are_healthy():
    result = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_doc_links.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stderr
