"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig


@pytest.fixture(autouse=True)
def _no_ambient_result_cache(monkeypatch) -> None:
    """Keep the developer's $REPRO_CACHE_DIR out of every test.

    The global result cache is opt-in via that environment variable, so
    a set value on the host would silently turn tests that count
    executed campaign points into cache-hit tests.  Tests that want the
    cache opt in explicitly (a cache object, ``cache_dir``, or their own
    monkeypatched variable).
    """
    from repro.campaign.cache import CACHE_DIR_ENV

    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)


@pytest.fixture(autouse=True)
def _isolated_obs_state():
    """Restore the process-wide observability state after every test.

    The metrics registry and the tracer are process singletons (that is
    what makes the instrumentation zero-plumbing), so a test that
    enables them — or a server fixture, which always enables metrics —
    must not leak enablement or accumulated samples into the next test.
    """
    from repro.obs.metrics import REGISTRY
    from repro.obs.trace import TRACER

    was_metered = REGISTRY.enabled
    was_tracing = TRACER.enabled
    yield
    REGISTRY.set_enabled(was_metered)
    REGISTRY.reset()
    TRACER.set_enabled(was_tracing)
    TRACER.clear()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def cluster() -> Cluster:
    """A default (tape-out configuration) cluster."""
    return Cluster()


@pytest.fixture
def small_cluster() -> Cluster:
    """A smaller cluster (2 NTX, 16 banks) for fast cycle-level tests."""
    from repro.mem.tcdm import TcdmConfig

    config = ClusterConfig(num_ntx=2, tcdm=TcdmConfig(size_bytes=32 * 1024, num_banks=16))
    return Cluster(config)
