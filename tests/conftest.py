"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def cluster() -> Cluster:
    """A default (tape-out configuration) cluster."""
    return Cluster()


@pytest.fixture
def small_cluster() -> Cluster:
    """A smaller cluster (2 NTX, 16 banks) for fast cycle-level tests."""
    from repro.mem.tcdm import TcdmConfig

    config = ClusterConfig(num_ntx=2, tcdm=TcdmConfig(size_bytes=32 * 1024, num_banks=16))
    return Cluster(config)
