"""Property-based tests (hypothesis) on the core invariants of the model."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agu import AddressGenerationUnit
from repro.core.commands import AguConfig, LoopConfig
from repro.core.golden import golden_address
from repro.core.hwloop import HardwareLoopNest
from repro.mem.dma import DmaEngine, DmaTransfer
from repro.mem.memory import Memory
from repro.mem.tcdm import Tcdm, TcdmConfig
from repro.riscv.assembler import assemble
from repro.riscv.decoder import decode
from repro.scenarios import ScenarioSpec, run_scenario
from repro.scenarios.compiler import BOUNDARIES, NEIGHBORHOODS, distance_classes
from repro.softfloat.ieee754 import Float32, float_to_bits
from repro.softfloat.pcs import PcsAccumulator

# ---------------------------------------------------------------------------
# IEEE-754 round trips
# ---------------------------------------------------------------------------

finite_float32_bits = st.integers(min_value=0, max_value=0xFFFFFFFF).filter(
    lambda bits: (bits >> 23) & 0xFF != 0xFF
)


@given(bits=finite_float32_bits)
def test_float32_bits_round_trip(bits):
    f = Float32(bits)
    assert float_to_bits(f.to_float()) == bits


@given(bits=finite_float32_bits)
def test_float32_field_reconstruction(bits):
    f = Float32(bits)
    value = (-1) ** f.sign * f.significand() * 2.0 ** f.unbiased_exponent()
    assert value == f.to_float()


@given(value=st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_round_exact_matches_numpy(value):
    assert Float32.round_exact(value).to_float() == float(np.float32(value))


# ---------------------------------------------------------------------------
# PCS accumulator exactness
# ---------------------------------------------------------------------------

small_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


@given(pairs=st.lists(st.tuples(small_floats, small_floats), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_pcs_accumulator_is_correctly_rounded(pairs):
    acc = PcsAccumulator()
    reference = Fraction(0)
    for a, b in pairs:
        a32 = float(np.float32(a))
        b32 = float(np.float32(b))
        acc.fma(a32, b32)
        reference += Fraction(a32) * Fraction(b32)
    expected = float(np.float32(float(reference))) if reference != 0 else 0.0
    got = acc.to_float()
    if reference == 0:
        assert got == 0.0
    else:
        # Correct rounding of the exact sum: at most one representable value
        # apart only when the binary64 conversion of the reference itself is
        # the rounding boundary; in practice they must be equal.
        assert got == expected


@given(values=st.lists(small_floats, min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_pcs_accumulation_order_invariance(values):
    forward = PcsAccumulator()
    backward = PcsAccumulator()
    for v in values:
        forward.fma(float(np.float32(v)), 1.0)
    for v in reversed(values):
        backward.fma(float(np.float32(v)), 1.0)
    assert forward.to_float() == backward.to_float()


# ---------------------------------------------------------------------------
# Hardware loops and address generation vs the closed-form oracle
# ---------------------------------------------------------------------------

loop_counts = st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=4)
strides = st.lists(st.integers(min_value=-64, max_value=64), min_size=5, max_size=5)


@given(counts=loop_counts, stride_values=strides, base=st.integers(0, 1 << 16))
@settings(max_examples=80, deadline=None)
def test_agu_walk_matches_closed_form(counts, stride_values, base):
    loops = LoopConfig.nest(*counts)
    agu_config = AguConfig(base=base, strides=tuple(s * 4 for s in stride_values))
    nest = HardwareLoopNest(loops)
    agu = AddressGenerationUnit(agu_config)
    for t, step in enumerate(nest):
        assert agu.address == golden_address(agu_config, loops.enabled_counts, t)
        agu.advance(step.wrap_level)


@given(counts=loop_counts)
@settings(max_examples=60, deadline=None)
def test_hwloop_visits_every_index_exactly_once(counts):
    loops = LoopConfig.nest(*counts)
    nest = HardwareLoopNest(loops)
    seen = [step.indices for step in nest]
    assert len(seen) == loops.total_iterations
    assert len(set(seen)) == loops.total_iterations


@given(counts=loop_counts)
@settings(max_examples=60, deadline=None)
def test_hwloop_wrap_level_consistency(counts):
    loops = LoopConfig.nest(*counts)
    products = [1]
    for c in loops.enabled_counts:
        products.append(products[-1] * c)
    for t, step in enumerate(HardwareLoopNest(loops)):
        expected_level = 0
        for level in range(1, len(products)):
            if (t + 1) % products[level] == 0:
                expected_level = level
        assert step.wrap_level == expected_level


# ---------------------------------------------------------------------------
# TCDM bank mapping and DMA copies
# ---------------------------------------------------------------------------


@given(word_index=st.integers(min_value=0, max_value=16383))
def test_tcdm_bank_mapping_is_word_interleaved(word_index):
    tcdm = Tcdm()
    address = tcdm.base + 4 * word_index
    assert tcdm.bank_of(address) == word_index % 32
    assert tcdm.contains(address, 4)


@given(
    rows=st.integers(min_value=1, max_value=5),
    row_bytes=st.integers(min_value=1, max_value=64),
    src_pitch_extra=st.integers(min_value=0, max_value=16),
    dst_pitch_extra=st.integers(min_value=0, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=50, deadline=None)
def test_dma_2d_transfer_preserves_every_row(rows, row_bytes, src_pitch_extra, dst_pitch_extra, seed):
    rng = np.random.default_rng(seed)
    src = Memory(8192, name="src")
    dst = Memory(8192, name="dst")
    src_pitch = row_bytes + src_pitch_extra
    dst_pitch = row_bytes + dst_pitch_extra
    payloads = []
    for row in range(rows):
        payload = rng.integers(0, 256, row_bytes, dtype=np.uint8).tobytes()
        payloads.append(payload)
        src.write_bytes(row * src_pitch, payload)
    transfer = DmaTransfer(
        src=0, dst=256, row_bytes=row_bytes, rows=rows,
        src_pitch=src_pitch, dst_pitch=dst_pitch,
    )
    DmaEngine().execute(transfer, src, dst)
    for row, payload in enumerate(payloads):
        assert dst.read_bytes(256 + row * dst_pitch, row_bytes) == payload


# ---------------------------------------------------------------------------
# Assembler / decoder agreement
# ---------------------------------------------------------------------------

_REGS = ["x0", "ra", "sp", "a0", "a1", "t0", "t3", "s1", "s11", "t6"]


@given(
    rd=st.sampled_from(_REGS),
    rs1=st.sampled_from(_REGS),
    rs2=st.sampled_from(_REGS),
    mnemonic=st.sampled_from(["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu", "mul", "div"]),
)
def test_r_type_round_trip(rd, rs1, rs2, mnemonic):
    from repro.riscv.registers import reg_index

    word = assemble(f"{mnemonic} {rd}, {rs1}, {rs2}").words[0]
    inst = decode(word)
    assert inst.mnemonic == mnemonic
    assert inst.rd == reg_index(rd)
    assert inst.rs1 == reg_index(rs1)
    assert inst.rs2 == reg_index(rs2)


@given(
    rd=st.sampled_from(_REGS),
    rs1=st.sampled_from(_REGS),
    imm=st.integers(min_value=-2048, max_value=2047),
    mnemonic=st.sampled_from(["addi", "andi", "ori", "xori", "slti"]),
)
def test_i_type_round_trip(rd, rs1, imm, mnemonic):
    word = assemble(f"{mnemonic} {rd}, {rs1}, {imm}").words[0]
    inst = decode(word)
    assert inst.mnemonic == mnemonic
    assert inst.imm == imm


@given(offset=st.integers(min_value=-512, max_value=511))
def test_load_store_offset_round_trip(offset):
    lw = decode(assemble(f"lw a0, {offset}(sp)").words[0])
    sw = decode(assemble(f"sw a0, {offset}(sp)").words[0])
    assert lw.imm == offset
    assert sw.imm == offset


@given(value=st.integers(min_value=-(2**31), max_value=2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_li_loads_arbitrary_constants(value):
    from repro.riscv.cpu import Cpu, CpuConfig
    from tests.test_riscv import _RamBus

    bus = _RamBus()
    program = assemble(f"li a0, {value}\necall")
    bus.mem.write_bytes(0, program.to_bytes())
    cpu = Cpu(bus, config=CpuConfig(reset_pc=0))
    cpu.run()
    assert cpu.exit_code == value


# ---------------------------------------------------------------------------
# Compiled-scenario fuzzing: random declarative stencils to parity
# ---------------------------------------------------------------------------
#
# Every draw is a full end-to-end property: a random (neighborhood, radius,
# coefficients, grid shape, boundary) tuple must compile, run on BOTH cycle
# engines, match the auto-derived golden *bitwise*, and leave bit-identical
# HMC contents across the engines.  Numpy-seeded draws (not hypothesis) so
# the quick tier runs a guaranteed, reproducible 25 specs.


def _draw_stencil_params(rng: np.random.Generator, deep: bool) -> dict:
    """One random declarative stencil, sized for its test tier."""
    dims = int(rng.integers(2, 4))
    neighborhood = NEIGHBORHOODS[int(rng.integers(len(NEIGHBORHOODS)))]
    if dims == 3:
        radius = int(rng.integers(1, 3)) if deep else 1
        span = 4 if deep else 3
    else:
        radius = int(rng.integers(1, 3))
        span = 8 if deep else 5
    low = 2 * radius + 1  # smallest grid a 'valid' output fits on
    grid_shape = tuple(int(n) for n in rng.integers(low, low + span, size=dims))
    boundary = BOUNDARIES[int(rng.integers(len(BOUNDARIES)))]
    if rng.integers(2):
        coefficients = "auto"
    else:
        classes = distance_classes(neighborhood, radius, dims)
        # Multiples of 1/256 in [-1/4, 1/4]: already on the coefficient
        # lattice, so quantization is the identity and products stay exact.
        coefficients = tuple(
            float(k) / 256.0 for k in rng.integers(-64, 65, size=classes)
        )
    return {
        "neighborhood": neighborhood,
        "radius": radius,
        "coefficients": coefficients,
        "grid_shape": grid_shape,
        "boundary": boundary,
    }


def _assert_compiled_spec_runs_to_parity(seed: int, deep: bool = False) -> None:
    params = _draw_stencil_params(np.random.default_rng(seed), deep)
    spec = ScenarioSpec(
        name=f"fuzz-cstencil-{seed}",
        family="cstencil",
        params=params,
        num_tiles=1,
        seed=seed,
        num_vaults=1,
        clusters_per_vault=1,
        stagger_cycles=0,
    )
    hmc_bytes = {}
    for engine in ("scalar", "vectorized"):
        outcome = run_scenario(spec, verify=False, engine=engine)
        for produced, (_, expected) in zip(
            outcome.output_arrays(), outcome.workload.references
        ):
            assert produced.tobytes() == expected.tobytes(), (engine, params)
        hmc_bytes[engine] = bytes(outcome.simulator.hmc.memory.data)
    assert hmc_bytes["scalar"] == hmc_bytes["vectorized"], params


@pytest.mark.parametrize("seed", range(25))
def test_fuzzed_compiled_stencil_is_bit_exact_on_both_engines(seed):
    _assert_compiled_spec_runs_to_parity(1000 + seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(60))
def test_fuzzed_compiled_stencil_deep_sweep(seed):
    """Larger grids, 3D radius 2: the full-depth version of the fuzz."""
    _assert_compiled_spec_runs_to_parity(20_000 + seed, deep=True)
