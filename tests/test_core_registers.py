"""Unit tests for the memory-mapped register interface of NTX."""

import pytest

from repro.core.commands import (
    AguConfig,
    InitSource,
    LoopConfig,
    NtxCommand,
    NtxOpcode,
)
from repro.core.registers import NtxRegisterFile, RegisterMap


def _example_command() -> NtxCommand:
    return NtxCommand(
        opcode=NtxOpcode.MAC,
        loops=LoopConfig.nest(12, 3),
        agu0=AguConfig(base=0x1000_0000, strides=(4, 8, 0, 0, 0)),
        agu1=AguConfig(base=0x1000_0400, strides=(4, -44, 0, 0, 0)),
        agu2=AguConfig(base=0x1000_0800, strides=(0, 4, 0, 0, 0)),
        init_level=1,
        store_level=1,
        init_source=InitSource.AGU2,
        scalar=1.5,
    )


class TestRegisterMap:
    def test_offsets_do_not_collide(self):
        offsets = {RegisterMap.STATUS, RegisterMap.CMD, RegisterMap.SCALAR,
                   RegisterMap.INIT_LEVEL, RegisterMap.STORE_LEVEL,
                   RegisterMap.OUTER_LEVEL, RegisterMap.INIT_SOURCE,
                   RegisterMap.WRITEBACK_EN}
        for level in range(5):
            offsets.add(RegisterMap.loop_count(level))
        for agu in range(3):
            offsets.add(RegisterMap.agu_base(agu))
            for level in range(5):
                offsets.add(RegisterMap.agu_stride(agu, level))
        assert len(offsets) == 8 + 5 + 3 * 6

    def test_opcode_encoding_round_trip(self):
        for opcode in NtxOpcode:
            value = RegisterMap.opcode_to_value(opcode)
            assert RegisterMap.value_to_opcode(value) is opcode

    def test_invalid_opcode_value(self):
        with pytest.raises(ValueError):
            RegisterMap.value_to_opcode(255)


class TestRegisterFile:
    def test_issue_reconstructs_command(self):
        captured = []
        regs = NtxRegisterFile(on_command=captured.append)
        command = _example_command()
        assert regs.issue(command)
        assert len(captured) == 1
        staged = captured[0]
        assert staged.opcode is command.opcode
        assert staged.loops == command.loops
        assert staged.agu0 == command.agu0
        assert staged.agu1 == command.agu1
        assert staged.agu2 == command.agu2
        assert staged.init_level == command.init_level
        assert staged.store_level == command.store_level
        assert staged.init_source is command.init_source
        assert staged.scalar == pytest.approx(command.scalar)

    def test_negative_strides_survive_the_bus(self):
        regs = NtxRegisterFile()
        regs.issue(_example_command())
        staged = regs.next_command()
        assert staged.agu1.strides[1] == -44

    def test_double_buffering_depth(self):
        regs = NtxRegisterFile()
        command = _example_command()
        assert regs.issue(command)
        assert regs.issue(command)
        # A third command must be rejected until one is drained.
        assert not regs.issue(command)
        assert regs.rejected_writes == 1
        assert regs.next_command() is not None
        assert regs.issue(command)

    def test_status_reflects_queue_and_busy(self):
        regs = NtxRegisterFile()
        assert regs.read(RegisterMap.STATUS) == 0
        regs.issue(_example_command())
        status = regs.read(RegisterMap.STATUS)
        assert status & 1  # busy because a command is queued
        assert status >> 1 == 1  # one queued command
        regs.next_command()
        regs.set_busy(False)
        assert regs.read(RegisterMap.STATUS) == 0

    def test_readback_of_staged_registers(self):
        regs = NtxRegisterFile()
        regs.write(RegisterMap.loop_count(2), 77)
        assert regs.read(RegisterMap.loop_count(2)) == 77
        regs.write(RegisterMap.agu_base(1), 0x2000)
        assert regs.read(RegisterMap.agu_base(1)) == 0x2000

    def test_unmapped_access_raises(self):
        regs = NtxRegisterFile()
        with pytest.raises(ValueError):
            regs.read(0xFFC)
        with pytest.raises(ValueError):
            regs.write(0xFFC, 1)

    def test_commands_issued_counter(self):
        regs = NtxRegisterFile()
        regs.issue(_example_command())
        assert regs.commands_issued == 1
