"""Parity/fuzz harness for cross-tile batched replay (repro.system.batch).

The batched cache-hit path promises *bit-identical* results to the plain
sequential scalar path — same HMC bytes, same timing reports — across
every combination of cycle engine, memoization, parallel dispatch and
batching.  This file holds that promise in place:

* a fixed accelerator matrix (engine x memoize x parallel x batch) checked
  against one sequential scalar reference run,
* a seeded randomized fuzz sweep over tile shapes, tile counts and
  cluster topologies (full depth under ``-m slow``, a short prefix in the
  default quick run),
* the self-containment gate: a tile whose compute reads TCDM residue that
  no DMA staged must send the *whole* run down the per-tile fallback
  before any state is touched,
* the shared-memory segment lifecycle of the parallel dispatcher — normal
  runs and injected worker crashes both leave zero segments behind,
* the acceptance gate: batched memoized replay is >= 5x faster than the
  unmemoized sequential path on the system bench shape, with identical
  outputs.

The reference draws lattice-valued operands (multiples of 1/16) so both
cycle engines produce bit-identical floating-point results; one test uses
arbitrary normal data to check batched-vs-unbatched identity *within* the
vectorized engine, where no cross-engine rounding question arises.
"""

import math
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.scenarios.workloads import _lattice
from repro.system import (
    ClusterAssignment,
    SystemConfig,
    SystemSimulator,
    conv_tiled_workload,
    run_cluster_groups_batched,
)
from repro.system import parallel as parallel_mod
from repro.system.memo import TileTimingCache


def _run(
    num_tiles=8,
    image_shape=(12, 14),
    seed=2019,
    engine="vectorized",
    memoize=True,
    parallel=None,
    batch=True,
    config=None,
    draw=_lattice,
):
    """One end-to-end system run; returns (simulator, workload, result)."""
    if config is None:
        config = SystemConfig(engine=engine)
    simulator = SystemSimulator(
        config, parallel=parallel, memoize=memoize, batch=batch
    )
    workload = conv_tiled_workload(
        simulator.hmc,
        num_tiles=num_tiles,
        image_shape=image_shape,
        seed=seed,
        draw=draw,
    )
    result = simulator.run(workload.tiles)
    return simulator, workload, result


def _hmc_bytes(simulator):
    """Zero-copy byte view of the whole HMC — full-DRAM bit identity."""
    return np.frombuffer(simulator.hmc.memory.data, dtype=np.uint8)


def _timing_view(result):
    """Everything timing-related a run reports, for exact comparison.

    ``cache_hits``/``cache_misses``/``workers`` are accounting of the
    acceleration machinery itself (a parallel run takes one miss per
    worker group by design) and deliberately excluded; every modeled
    quantity — makespan, contention, per-tile cycles, per-tile simulation
    results — must match bit for bit.
    """
    return (
        result.makespan_cycles,
        result.contention_factor,
        [
            (
                report.cluster_id,
                report.vault_id,
                report.tile_indices,
                report.compute_cycles_per_tile,
                report.dma_cycles_per_tile,
                report.results,
                report.busy_cycles,
                report.dma_bytes,
            )
            for report in result.reports
        ],
    )


def _assert_matches_reference(reference, candidate):
    """Bit-identical HMC contents and identical timing reports."""
    ref_sim, ref_workload, ref_result = reference
    sim, workload, result = candidate
    assert np.array_equal(_hmc_bytes(ref_sim), _hmc_bytes(sim))
    assert _timing_view(result) == _timing_view(ref_result)
    workload.verify(sim.hmc)


# -- the accelerator matrix ----------------------------------------------------


@pytest.fixture(scope="module")
def scalar_reference():
    """The ground truth: sequential scalar engine, no acceleration at all."""
    return _run(engine="scalar", memoize=False, parallel=None, batch=False)


class TestAcceleratorMatrix:
    """Every engine x memoize x parallel x batch combination vs the reference."""

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    @pytest.mark.parametrize("memoize", [False, True])
    @pytest.mark.parametrize("parallel", [None, 2])
    @pytest.mark.parametrize("batch", [False, True])
    def test_combination_matches_scalar_sequential(
        self, scalar_reference, engine, memoize, parallel, batch
    ):
        candidate = _run(
            engine=engine, memoize=memoize, parallel=parallel, batch=batch
        )
        _assert_matches_reference(scalar_reference, candidate)

    def test_batched_run_actually_hits_the_cache(self):
        """Guard against the matrix passing because batching never engaged."""
        _, _, result = _run(memoize=True, batch=True)
        assert result.cache_hits > 0


class TestBatchedVsUnbatchedArbitraryData:
    """On arbitrary (non-lattice) data the cross-engine comparison is moot,
    but batched replay must still be bit-identical to the per-tile path of
    the *same* engine."""

    def test_vectorized_engine_bit_identical(self):
        def normal(rng, shape):
            return rng.standard_normal(shape).astype(np.float32)

        unbatched = _run(memoize=True, batch=False, draw=normal, seed=7)
        batched = _run(memoize=True, batch=True, draw=normal, seed=7)
        _assert_matches_reference(unbatched, batched)


# -- randomized fuzz sweep -----------------------------------------------------


def _fuzz_draws(count, entropy):
    """Seeded random system/workload shapes — deterministic across runs."""
    rng = np.random.default_rng(entropy)
    draws = []
    for _ in range(count):
        draws.append(
            dict(
                num_tiles=int(rng.integers(3, 19)),
                image_shape=(
                    int(rng.integers(8, 25)),
                    int(rng.integers(8, 29)),
                ),
                seed=int(rng.integers(0, 2**31)),
                config_kwargs=dict(
                    num_vaults=int(rng.integers(1, 3)),
                    clusters_per_vault=int(rng.integers(1, 5)),
                ),
            )
        )
    return draws


def _fuzz_one(draw, combos):
    """Run one fuzz draw: scalar sequential reference vs each combo."""
    reference = _run(
        num_tiles=draw["num_tiles"],
        image_shape=draw["image_shape"],
        seed=draw["seed"],
        memoize=False,
        parallel=None,
        batch=False,
        config=SystemConfig(engine="scalar", **draw["config_kwargs"]),
    )
    for engine, memoize, parallel, batch in combos:
        candidate = _run(
            num_tiles=draw["num_tiles"],
            image_shape=draw["image_shape"],
            seed=draw["seed"],
            memoize=memoize,
            parallel=parallel,
            batch=batch,
            config=SystemConfig(engine=engine, **draw["config_kwargs"]),
        )
        _assert_matches_reference(reference, candidate)


class TestFuzzParity:
    QUICK_COMBOS = [
        ("vectorized", True, None, True),
        ("scalar", True, None, True),
    ]
    FULL_COMBOS = [
        (engine, memoize, parallel, batch)
        for engine in ("scalar", "vectorized")
        for memoize in (False, True)
        for parallel in (None, 2)
        for batch in (False, True)
    ]

    @pytest.mark.parametrize("draw", _fuzz_draws(3, entropy=0xB47C4))
    def test_quick_sweep(self, draw):
        _fuzz_one(draw, self.QUICK_COMBOS)

    @pytest.mark.slow
    @pytest.mark.parametrize("draw", _fuzz_draws(8, entropy=0x5C41E))
    def test_full_depth_sweep(self, draw):
        _fuzz_one(draw, self.FULL_COMBOS)


# -- the self-containment gate -------------------------------------------------


class TestSelfContainmentGate:
    """A tile whose reads are not covered by its own DMA-in rows (it reads
    whatever residue the previous tile left in the TCDM) must force the
    whole run down the per-tile path — before any state is touched."""

    def _doctored(self, simulator, num_tiles=6):
        workload = conv_tiled_workload(
            simulator.hmc, num_tiles=num_tiles, image_shape=(12, 14), draw=_lattice
        )
        # Strip the staging DMA of one interior tile: its commands now read
        # uncovered TCDM words, so the group containing it is not
        # self-contained.
        workload.tiles[2].transfers_in = []
        return workload

    def test_gate_refuses_the_group(self):
        simulator = SystemSimulator(SystemConfig())
        workload = self._doctored(simulator)
        plan = simulator.shard(workload.tiles)
        vault_of = simulator.config.vault_of_cluster
        work = [
            ClusterAssignment(
                cluster_id=cluster_id,
                vault_id=vault_of[cluster_id],
                cluster=simulator.clusters[cluster_id],
                assigned=[(i, workload.tiles[i]) for i in tile_indices],
            )
            for cluster_id, tile_indices in enumerate(plan.tiles_of)
        ]
        assert run_cluster_groups_batched(
            simulator.config, work, TileTimingCache()
        ) is None
        # The refusal happened in the read-only phase: nothing ran.
        for cluster in simulator.clusters:
            assert cluster.tcdm.memory.reads == 0
            assert cluster.tcdm.memory.writes == 0
            assert cluster.dma.stats.transfers == 0

    def test_fallback_is_still_bit_identical(self):
        runs = []
        for batch in (False, True):
            simulator = SystemSimulator(
                SystemConfig(), memoize=True, batch=batch
            )
            workload = self._doctored(simulator)
            result = simulator.run(workload.tiles)
            runs.append((simulator, workload, result))
        (ref_sim, _, ref_result), (sim, _, result) = runs
        assert np.array_equal(_hmc_bytes(ref_sim), _hmc_bytes(sim))
        assert _timing_view(result) == _timing_view(ref_result)


# -- shared-memory segment lifecycle -------------------------------------------


class TestSharedMemoryLifecycle:
    def _track_segments(self, monkeypatch):
        """Record the name of every segment the dispatcher creates."""
        created = []
        real = parallel_mod._create_segment

        def tracking(num_bytes):
            segment = real(num_bytes)
            created.append(segment.name)
            return segment

        monkeypatch.setattr(parallel_mod, "_create_segment", tracking)
        return created

    def _assert_all_unlinked(self, names):
        assert not parallel_mod._ACTIVE_SEGMENTS
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_normal_run_unlinks_every_segment(self, monkeypatch):
        created = self._track_segments(monkeypatch)
        _run(parallel=2, memoize=True, batch=True)
        assert created  # the run really went through the staging path
        self._assert_all_unlinked(created)

    def test_worker_exception_surfaces_and_unlinks(self, monkeypatch):
        created = self._track_segments(monkeypatch)
        monkeypatch.setenv(parallel_mod.CRASH_ENV, "raise")
        with pytest.raises(RuntimeError, match="injected worker crash"):
            _run(parallel=2, memoize=True, batch=True)
        assert created
        self._assert_all_unlinked(created)

    def test_worker_hard_death_surfaces_and_unlinks(self, monkeypatch):
        """os._exit in a worker must raise a clear error, not hang."""
        created = self._track_segments(monkeypatch)
        monkeypatch.setenv(parallel_mod.CRASH_ENV, "exit")
        with pytest.raises(RuntimeError, match="worker process died"):
            _run(parallel=2, memoize=True, batch=True)
        assert created
        self._assert_all_unlinked(created)


# -- acceptance gate -----------------------------------------------------------


class TestAcceptanceBatchedSpeedup:
    def test_batched_memoized_is_5x_faster_with_identical_outputs(self):
        """Acceptance gate: memoization+batching >= 5x over the unaccelerated
        sequential path on the system bench shape, bit-identical outputs.

        Mirrors the parallel 3x gate in ``test_system.py``: the baseline is
        sized to take ~1s so the accelerated side has margin on a loaded
        CI machine, and the accelerated run is best-of-three — noise can
        only slow the accelerated side, so retrying it is conservative.
        """
        shape, tiles = (48, 52), 32

        start = time.perf_counter()
        reference = _run(
            num_tiles=tiles, image_shape=shape, memoize=False, batch=False
        )
        wall_sequential = time.perf_counter() - start

        wall_fast = math.inf
        for _ in range(3):
            start = time.perf_counter()
            candidate = _run(
                num_tiles=tiles, image_shape=shape, memoize=True, batch=True
            )
            wall_fast = min(wall_fast, time.perf_counter() - start)
            if wall_sequential / wall_fast >= 7.0:  # comfortable margin
                break

        _assert_matches_reference(reference, candidate)
        assert candidate[2].cache_hits > 0
        speedup = wall_sequential / wall_fast
        assert speedup >= 5.0, (
            f"batched replay speedup {speedup:.2f}x below the 5x gate "
            f"({wall_sequential:.3f}s -> {wall_fast:.3f}s)"
        )
