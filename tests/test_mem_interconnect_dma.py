"""Unit tests for the TCDM interconnect, the DMA engine, I-cache, AXI and HMC."""

import numpy as np
import pytest

from repro.mem.axi import AxiConfig, AxiPort
from repro.mem.dma import DmaConfig, DmaEngine, DmaTransfer
from repro.mem.hmc import Hmc, HmcConfig
from repro.mem.icache import ICacheConfig, InstructionCache
from repro.mem.interconnect import MemoryRequest, TcdmInterconnect
from repro.mem.memory import Memory
from repro.mem.tcdm import Tcdm


class TestInterconnect:
    def _interconnect(self):
        return TcdmInterconnect(Tcdm(), num_masters=4)

    def test_no_conflict_all_granted(self):
        ic = self._interconnect()
        base = ic.tcdm.base
        requests = [MemoryRequest(master=i, address=base + 4 * i) for i in range(4)]
        result = ic.arbitrate(requests)
        assert len(result.granted) == 4
        assert not result.stalled
        assert ic.conflict_probability == 0.0

    def test_same_bank_conflict_grants_one(self):
        ic = self._interconnect()
        base = ic.tcdm.base
        # Same bank: addresses 0 and 0 + 32 words.
        requests = [
            MemoryRequest(master=0, address=base),
            MemoryRequest(master=1, address=base + 4 * 32),
        ]
        result = ic.arbitrate(requests)
        assert len(result.granted) == 1
        assert len(result.stalled) == 1
        assert ic.conflicts == 1

    def test_round_robin_rotates_winner(self):
        ic = self._interconnect()
        base = ic.tcdm.base
        winners = []
        for _ in range(4):
            requests = [
                MemoryRequest(master=0, address=base),
                MemoryRequest(master=1, address=base),
            ]
            result = ic.arbitrate(requests)
            winners.append(result.granted[0].master)
        assert set(winners) == {0, 1}

    def test_granted_addresses_by_master(self):
        ic = self._interconnect()
        base = ic.tcdm.base
        result = ic.arbitrate([MemoryRequest(master=2, address=base + 8)])
        assert result.granted_addresses_by_master == {2: {base + 8}}

    def test_stats_dictionary(self):
        ic = self._interconnect()
        ic.arbitrate([MemoryRequest(master=0, address=ic.tcdm.base)])
        stats = ic.stats
        assert stats["cycles"] == 1 and stats["requests"] == 1 and stats["grants"] == 1


class TestDma:
    def test_1d_copy(self, rng):
        dma = DmaEngine()
        src = Memory(256, name="src")
        dst = Memory(256, name="dst")
        data = rng.integers(0, 255, 64, dtype=np.uint8).tobytes()
        src.write_bytes(0, data)
        cycles = dma.execute(DmaTransfer(src=0, dst=16, row_bytes=64), src, dst)
        assert dst.read_bytes(16, 64) == data
        assert cycles > 0

    def test_2d_copy_with_pitches(self):
        dma = DmaEngine()
        src = Memory(4096)
        dst = Memory(4096)
        for row in range(4):
            src.write_bytes(row * 64, bytes([row + 1] * 16))
        transfer = DmaTransfer(
            src=0, dst=0, row_bytes=16, rows=4, src_pitch=64, dst_pitch=16
        )
        dma.execute(transfer, src, dst)
        assert dst.read_bytes(0, 64) == b"".join(bytes([r + 1] * 16) for r in range(4))

    def test_transfer_cycle_model_scales_with_size(self):
        dma = DmaEngine()
        small = dma.transfer_cycles(DmaTransfer(src=0, dst=0, row_bytes=64))
        large = dma.transfer_cycles(DmaTransfer(src=0, dst=0, row_bytes=4096))
        assert large > small
        # Payload cycles alone: 4096 B over an 8 B bus is 512 beats.
        assert large >= 512

    def test_bandwidth_approaches_bus_width_for_long_bursts(self):
        dma = DmaEngine(DmaConfig())
        transfer = DmaTransfer(src=0, dst=0, row_bytes=1 << 16)
        assert dma.bandwidth_bytes_per_cycle(transfer) > 5.0  # of 8 B/cycle peak

    def test_invalid_transfer(self):
        with pytest.raises(ValueError):
            DmaTransfer(src=0, dst=0, row_bytes=0)

    def test_stats_accumulate(self):
        dma = DmaEngine()
        src, dst = Memory(128), Memory(128)
        dma.execute(DmaTransfer(src=0, dst=0, row_bytes=32), src, dst)
        dma.execute(DmaTransfer(src=0, dst=0, row_bytes=32), src, dst)
        assert dma.stats.transfers == 2
        assert dma.stats.bytes_moved == 64


class TestICache:
    def test_first_access_misses_then_hits(self):
        icache = InstructionCache(ICacheConfig(prefetch=False))
        assert icache.access(0x100) == icache.config.miss_latency
        assert icache.access(0x104) == icache.config.hit_latency

    def test_linear_prefetch_hides_next_line(self):
        icache = InstructionCache(ICacheConfig(prefetch=True))
        icache.access(0x000)  # miss, prefetches line 1
        assert icache.access(0x020) == icache.config.hit_latency

    def test_loop_converges_to_high_hit_rate(self):
        icache = InstructionCache()
        for _ in range(10):
            for pc in range(0x0, 0x80, 4):
                icache.access(pc)
        assert icache.hit_rate > 0.95

    def test_capacity_conflict(self):
        config = ICacheConfig(size_bytes=64, line_bytes=32, prefetch=False)
        icache = InstructionCache(config)
        icache.access(0x00)
        icache.access(0x40)  # maps to the same line (2-line cache)
        assert icache.access(0x00) == config.miss_latency

    def test_invalidate(self):
        icache = InstructionCache(ICacheConfig(prefetch=False))
        icache.access(0x0)
        icache.invalidate()
        assert icache.access(0x0) == icache.config.miss_latency


class TestAxiAndHmc:
    def test_axi_peak_bandwidth_matches_paper(self):
        axi = AxiConfig()
        assert axi.peak_bandwidth_gbs == pytest.approx(5.0)
        assert AxiConfig(width_bits=128).peak_bandwidth_gbs == pytest.approx(10.0)
        assert AxiConfig(width_bits=256).peak_bandwidth_gbs == pytest.approx(20.0)

    def test_axi_transfer_cycles(self):
        port = AxiPort()
        assert port.transfer_cycles(64) == 8
        port.record(64, 8)
        assert port.achieved_bandwidth_bytes_per_s == pytest.approx(
            64 / (8 / 625e6)
        )

    def test_axi_invalid_width(self):
        with pytest.raises(ValueError):
            AxiConfig(width_bits=12)

    def test_hmc_vault_interleaving(self):
        hmc = Hmc()
        v0 = hmc.vault_of(hmc.base)
        v1 = hmc.vault_of(hmc.base + 256)
        assert v0.index == 0 and v1.index == 1
        assert hmc.vault_of(hmc.base + 256 * 32).index == 0

    def test_hmc_data_access_and_stats(self, rng):
        hmc = Hmc(HmcConfig(capacity_bytes=1 << 20))
        data = rng.standard_normal(32).astype(np.float32)
        hmc.store_array(hmc.base + 1024, data)
        np.testing.assert_array_equal(hmc.load_array(hmc.base + 1024, (32,)), data)
        assert hmc.stats["total_bytes"] > 0

    def test_hmc_aggregate_bandwidth(self):
        config = HmcConfig()
        assert config.aggregate_vault_bandwidth == pytest.approx(320e9)
        hmc = Hmc(config)
        assert hmc.supports_cluster_count(32, per_cluster_gbs=5.0)
        assert not hmc.supports_cluster_count(128, per_cluster_gbs=5.0)

    def test_vault_service_time(self):
        vault = Hmc().vaults[0]
        assert vault.service_time_s(256) > vault.latency_ns * 1e-9
