"""DNN workload description tests: layers, networks and the training model."""

import pytest

from repro.dnn import (
    ConvLayer,
    LinearLayer,
    PoolLayer,
    ActivationLayer,
    PAPER_NETWORKS,
    TrainingWorkload,
    build_alexnet,
    build_googlenet,
    build_inception_v3,
    build_network,
    build_resnet,
    layer_traffic,
)


class TestLayers:
    def test_conv_geometry(self):
        layer = ConvLayer(
            name="c", in_channels=3, in_height=224, in_width=224,
            out_channels_=64, kernel=7, stride=2, padding=3,
        )
        assert layer.output_shape == (64, 112, 112)
        assert layer.param_count == 7 * 7 * 3 * 64 + 64
        assert layer.forward_macs == 112 * 112 * 64 * 3 * 49

    def test_conv_training_flops_are_three_forward_passes(self):
        layer = ConvLayer(
            name="c", in_channels=8, in_height=16, in_width=16,
            out_channels_=8, kernel=3, padding=1,
        )
        assert layer.training_flops == 3 * layer.forward_flops

    def test_linear_layer(self):
        layer = LinearLayer(
            name="fc", in_channels=256, in_height=6, in_width=6, out_features=4096
        )
        assert layer.forward_macs == 256 * 36 * 4096
        assert layer.param_count == 256 * 36 * 4096 + 4096
        assert layer.output_shape == (4096, 1, 1)

    def test_pool_layer_has_no_params(self):
        layer = PoolLayer(name="p", in_channels=64, in_height=56, in_width=56, kernel=2, stride=2)
        assert layer.param_count == 0
        assert layer.output_shape == (64, 28, 28)
        assert layer.training_flops == 2 * layer.forward_flops

    def test_activation_layer(self):
        layer = ActivationLayer(name="r", in_channels=16, in_height=4, in_width=4)
        assert layer.forward_flops == 16 * 16
        assert not layer.is_compute_layer


class TestNetworks:
    def test_all_paper_networks_build(self):
        for name in PAPER_NETWORKS:
            network = build_network(name)
            assert network.layers, name
            assert network.forward_macs > 0

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            build_network("VGG-16")

    def test_alexnet_statistics(self):
        net = build_alexnet()
        # ~61 M parameters, dominated by the fully-connected layers.
        assert 55e6 < net.param_count < 70e6
        assert 0.6e9 < net.forward_macs < 1.5e9

    def test_googlenet_statistics(self):
        net = build_googlenet()
        assert 5e6 < net.param_count < 9e6
        assert 1.0e9 < net.forward_macs < 2.2e9

    def test_resnet_family_ordering(self):
        r34, r50, r152 = build_resnet(34), build_resnet(50), build_resnet(152)
        assert r34.forward_macs < r152.forward_macs
        assert r50.forward_macs < r152.forward_macs
        assert 18e6 < r34.param_count < 26e6
        assert 22e6 < r50.param_count < 30e6
        assert 50e6 < r152.param_count < 70e6

    def test_inception_v3_statistics(self):
        net = build_inception_v3()
        assert 20e6 < net.param_count < 40e6
        assert 4e9 < net.forward_macs < 10e9

    def test_unsupported_resnet_depth(self):
        with pytest.raises(ValueError):
            build_resnet(18)

    def test_network_summary(self):
        summary = build_alexnet().summary()
        assert summary["name"] == "AlexNet"
        assert summary["training_gflops"] > summary["forward_gmacs"]


class TestTrainingModel:
    def test_layer_traffic_scales_with_batch(self):
        layer = ConvLayer(
            name="c", in_channels=64, in_height=28, in_width=28,
            out_channels_=64, kernel=3, padding=1,
        )
        small = layer_traffic(layer, batch=8)
        large = layer_traffic(layer, batch=64)
        assert large.flops == 8 * small.flops
        assert large.total_bytes > small.total_bytes

    def test_parameter_free_layer_traffic(self):
        layer = PoolLayer(name="p", in_channels=32, in_height=8, in_width=8, kernel=2, stride=2)
        traffic = layer_traffic(layer, batch=4)
        assert traffic.update_bytes == 0
        assert traffic.forward_bytes == 4 * (layer.input_bytes + layer.output_bytes)

    def test_workload_operational_intensity_in_plausible_band(self):
        for name in PAPER_NETWORKS:
            workload = TrainingWorkload(build_network(name), batch=64)
            # The paper's energy numbers imply single-digit flop/byte.
            assert 2.0 < workload.operational_intensity < 25.0, name

    def test_fully_connected_heavy_network_has_lowest_intensity(self):
        intensities = {
            name: TrainingWorkload(build_network(name), batch=64).operational_intensity
            for name in ("AlexNet", "GoogLeNet", "Inception v3")
        }
        assert intensities["AlexNet"] < intensities["Inception v3"]

    def test_utilization_below_one_and_degrades_with_conflicts(self):
        workload = TrainingWorkload(build_network("GoogLeNet"), batch=32)
        assert 0.5 < workload.utilization() < 1.0
        assert workload.utilization(conflict_probability=0.3) < workload.utilization()

    def test_larger_tcdm_reduces_traffic(self):
        net = build_network("ResNet-50")
        small = TrainingWorkload(net, batch=16, tcdm_bytes=32 * 1024)
        large = TrainingWorkload(net, batch=16, tcdm_bytes=256 * 1024)
        assert large.dram_bytes_per_step <= small.dram_bytes_per_step

    def test_summary_fields(self):
        workload = TrainingWorkload(build_network("AlexNet"), batch=16)
        summary = workload.summary()
        assert summary["network"] == "AlexNet"
        assert summary["gflops_per_step"] > 0
        assert summary["dram_gb_per_step"] > 0
