"""The simulation-as-a-service daemon and the unified ExecutionOptions
API: options round-trip/validation/legacy parity, submission parsing and
content-hash identity, end-to-end submit/poll/result over a real socket,
concurrent-client dedup with bit-identical results, cancel-and-resume,
kill-and-restart recovery, and the SIGTERM path of the CLI entry point."""

import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.campaign import ResultStore, SweepSpec
from repro.client import Client, ServerError
from repro.options import ExecutionOptions, merge_legacy_options
from repro.scenarios import ScenarioSpec, run_scenario
from repro.server import JobError, ReproServer, parse_submission
from repro.server.jobs import JobManager
from repro.system import SystemConfig, SystemSimulator


def tiny_spec(**overrides) -> ScenarioSpec:
    """A conv scenario small enough to simulate many times per test."""
    settings = dict(
        name="tiny-conv",
        family="conv",
        params={"image_shape": (8, 10)},
        num_tiles=2,
        num_vaults=1,
        clusters_per_vault=1,
    )
    settings.update(overrides)
    return ScenarioSpec(**settings)


def tiny_sweep(**overrides) -> SweepSpec:
    """A 4-point sweep over the tile count (resumable point by point)."""
    settings = dict(
        name="tiny-server-sweep",
        description="test sweep",
        base=tiny_spec(),
        axes={"num_tiles": (1, 2, 3, 4)},
    )
    settings.update(overrides)
    return SweepSpec(**settings)


@pytest.fixture()
def server(tmp_path):
    """One in-process daemon on an ephemeral port, torn down after."""
    instance = ReproServer(port=0, workers=2, store_dir=tmp_path / "store")
    instance.start()
    yield instance
    instance.close()


class TestExecutionOptions:
    def test_defaults(self):
        options = ExecutionOptions()
        assert options.engine is None
        assert options.parallel == 0
        assert options.memoize is True
        assert options.batch is True
        assert options.workers == 0
        assert options.quick is False

    def test_dict_round_trip(self):
        options = ExecutionOptions(
            engine="scalar", parallel=2, memoize=False, batch=False,
            workers=3, quick=True,
        )
        assert ExecutionOptions.from_dict(options.to_dict()) == options

    def test_json_round_trip(self):
        options = ExecutionOptions(parallel=1, quick=True)
        assert ExecutionOptions.from_json(options.to_json()) == options

    def test_from_dict_missing_fields_default(self):
        assert ExecutionOptions.from_dict({}) == ExecutionOptions()
        assert ExecutionOptions.from_dict({"quick": True}).quick is True

    def test_from_dict_unknown_field_lists_accepted(self):
        with pytest.raises(ValueError, match="turbo.*accepted"):
            ExecutionOptions.from_dict({"turbo": True})

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(ValueError, match="warp"):
            ExecutionOptions(engine="warp")

    def test_parallel_true_means_cpu_count(self):
        assert ExecutionOptions(parallel=True).parallel == (os.cpu_count() or 1)
        assert ExecutionOptions(parallel=None).parallel == 0
        assert ExecutionOptions(parallel=False).parallel == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ExecutionOptions(parallel=-2)
        with pytest.raises(ValueError, match="non-negative"):
            ExecutionOptions(workers=-1)

    def test_non_bool_flags_rejected(self):
        with pytest.raises(ValueError, match="memoize"):
            ExecutionOptions(memoize=1)
        with pytest.raises(ValueError, match="quick"):
            ExecutionOptions(quick="yes")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionOptions().parallel = 4

    def test_spec_overrides_only_non_defaults(self):
        assert ExecutionOptions().spec_overrides() == {}
        overrides = ExecutionOptions(
            engine="scalar", parallel=2, memoize=False, batch=False,
            workers=4, quick=True,
        ).spec_overrides()
        assert overrides == {"engine": "scalar", "parallel": 2, "memoize": False}

    def test_with_overrides_validates(self):
        options = ExecutionOptions().with_overrides(parallel=2)
        assert options.parallel == 2
        with pytest.raises(ValueError):
            options.with_overrides(workers=-1)


class TestLegacyShim:
    def test_legacy_keyword_warns_and_matches_options(self):
        with pytest.warns(DeprecationWarning, match="parallel"):
            legacy = SystemSimulator(SystemConfig(), parallel=2, memoize=False)
        modern = SystemSimulator(
            SystemConfig(), options=ExecutionOptions(parallel=2, memoize=False)
        )
        assert legacy.options == modern.options
        assert (legacy.parallel, legacy.memoize) == (modern.parallel, modern.memoize)

    def test_both_options_and_legacy_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            SystemSimulator(
                SystemConfig(), parallel=2, options=ExecutionOptions()
            )

    def test_options_as_mapping_accepted(self):
        simulator = SystemSimulator(SystemConfig(), options={"parallel": 1})
        assert simulator.parallel == 1

    def test_merge_helper_rejects_non_mapping(self):
        with pytest.raises(TypeError, match="ExecutionOptions"):
            merge_legacy_options(3, "caller")

    def test_run_scenario_legacy_batch_parity(self):
        spec = tiny_spec()
        with pytest.warns(DeprecationWarning, match="batch"):
            legacy = run_scenario(spec, batch=False)
        modern = run_scenario(spec, options=ExecutionOptions(batch=False))
        assert legacy.result.makespan_cycles == modern.result.makespan_cycles
        assert legacy.verified and modern.verified

    def test_engine_option_threads_into_simulator_config(self):
        simulator = SystemSimulator(
            SystemConfig(), options=ExecutionOptions(engine="scalar")
        )
        assert simulator.config.engine == "scalar"


class TestSubmissionParsing:
    def test_kind_required(self):
        with pytest.raises(JobError, match="kind"):
            parse_submission({"spec": tiny_spec().to_dict()})

    def test_scenario_needs_spec_or_name(self):
        with pytest.raises(JobError, match="spec"):
            parse_submission({"kind": "scenario"})

    def test_campaign_needs_sweep_or_name(self):
        with pytest.raises(JobError, match="sweep"):
            parse_submission({"kind": "campaign"})

    def test_unknown_option_is_a_job_error(self):
        with pytest.raises(JobError, match="turbo"):
            parse_submission(
                {"kind": "scenario", "spec": tiny_spec().to_dict(),
                 "options": {"turbo": True}}
            )

    def test_registered_names_resolve(self):
        submission = parse_submission({"kind": "scenario", "scenario": "conv-tiled"})
        assert submission.spec.name == "conv-tiled"
        submission = parse_submission(
            {"kind": "campaign", "campaign": "conv-geometry-sweep"}
        )
        assert submission.sweep.name == "conv-geometry-sweep"

    def test_execution_knobs_do_not_change_identity(self):
        """batch/workers are exact execution paths: same job, one result."""
        base = {"kind": "scenario", "spec": tiny_spec().to_dict()}
        plain = parse_submission(base).job_id
        batched = parse_submission(
            {**base, "options": {"batch": False, "workers": 3}}
        ).job_id
        assert plain == batched

    def test_spec_overrides_change_identity(self):
        base = {"kind": "scenario", "spec": tiny_spec().to_dict()}
        plain = parse_submission(base).job_id
        memoless = parse_submission(
            {**base, "options": {"memoize": False}}
        ).job_id
        assert plain != memoless

    def test_quick_changes_campaign_identity(self):
        base = {"kind": "campaign", "sweep": tiny_sweep().to_dict()}
        assert (
            parse_submission(base).job_id
            != parse_submission({**base, "options": {"quick": True}}).job_id
        )

    def test_journal_payload_round_trips(self):
        submission = parse_submission(
            {"kind": "campaign", "sweep": tiny_sweep().to_dict(),
             "options": {"quick": True}}
        )
        again = parse_submission(submission.payload())
        assert again.job_id == submission.job_id
        assert again.sweep == submission.sweep

    def test_manager_rejects_zero_workers(self, tmp_path):
        with pytest.raises(ValueError, match="worker"):
            JobManager(tmp_path, workers=0)


class TestServerEndToEnd:
    def test_healthz_schema(self, server):
        health = Client(server.url).healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert health["workers"] == 2
        assert set(health["cache"]) == {"entries", "hits", "misses", "hit_rate"}
        assert set(health["result_cache"]) == {"dir", "entries", "hits", "misses"}
        assert health["result_cache"]["dir"].endswith("result-cache")
        for key in ("queued", "running", "completed", "failed", "cancelled",
                    "total", "in_flight", "submitted", "deduplicated",
                    "store_hits", "simulations", "recovered"):
            assert key in health["jobs"]

    def test_scenario_submit_poll_result(self, server):
        client = Client(server.url)
        job = client.submit_scenario(tiny_spec())
        assert job["state"] in ("queued", "running", "completed")
        result = client.wait(job["id"], timeout=120)
        assert result["kind"] == "scenario"
        assert result["record"]["metrics"]["makespan_cycles"] > 0
        assert client.status(job["id"])["state"] == "completed"

    def test_concurrent_identical_submissions_simulate_once(self, server):
        """Four clients race the same content-hashed point: one simulation,
        four bit-identical results (the headline dedup guarantee)."""
        spec = tiny_spec(num_tiles=3)
        results, errors = [], []

        def one_client():
            try:
                client = Client(server.url)
                job = client.submit_scenario(spec)
                results.append(client.wait(job["id"], timeout=120))
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=one_client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors
        assert len(results) == 4
        assert all(result == results[0] for result in results)
        health = Client(server.url).healthz()
        assert health["jobs"]["simulations"] == 1
        assert health["jobs"]["submitted"] == 4
        assert health["jobs"]["deduplicated"] == 3

    def test_second_submission_hits_the_warm_cache(self, server):
        """A structurally identical tile in a *different* submission is
        served by the shared process-lifetime timing cache."""
        client = Client(server.url)
        client.wait(client.submit_scenario(tiny_spec(num_tiles=2))["id"], timeout=120)
        before = client.healthz()["cache"]
        client.wait(client.submit_scenario(tiny_spec(num_tiles=4))["id"], timeout=120)
        after = client.healthz()["cache"]
        assert after["hits"] > before["hits"]
        assert after["misses"] == before["misses"]  # same tile structure
        assert after["hit_rate"] > 0

    def test_campaign_runs_and_identical_resubmission_dedups(self, server):
        client = Client(server.url)
        sweep = tiny_sweep()
        job = client.submit_campaign(sweep.to_dict())
        result = client.wait(job["id"], timeout=300)
        assert result["kind"] == "campaign"
        assert result["points"] == 4
        assert result["executed"] == 4
        assert result["complete"] is True
        again = client.submit_campaign(sweep.to_dict())
        assert again["deduplicated"] is True
        assert client.wait(again["id"], timeout=30) == result

    def test_result_cache_survives_daemon_restart(self, tmp_path):
        """Satellite/tentpole: the global result cache outlives the daemon.

        A second daemon with a *fresh* job store but the same cache
        directory serves previously simulated work without executing —
        scenario and campaign alike — and ``/healthz`` accounts for it.
        """
        cache_dir = str(tmp_path / "result-cache")
        first = ReproServer(
            port=0, workers=2, store_dir=tmp_path / "a", cache_dir=cache_dir
        )
        first.start()
        try:
            client = Client(first.url)
            client.wait(client.submit_scenario(tiny_spec())["id"], timeout=120)
            client.wait(
                client.submit_campaign(tiny_sweep().to_dict())["id"], timeout=300
            )
            assert client.healthz()["result_cache"]["dir"] == cache_dir
        finally:
            first.close()

        second = ReproServer(
            port=0, workers=2, store_dir=tmp_path / "b", cache_dir=cache_dir
        )
        second.start()
        try:
            client = Client(second.url)
            record = client.wait(
                client.submit_scenario(tiny_spec())["id"], timeout=120
            )["record"]
            assert record["metrics"]["makespan_cycles"] > 0
            campaign = client.wait(
                client.submit_campaign(tiny_sweep().to_dict())["id"], timeout=120
            )
            assert campaign["complete"] is True
            assert campaign["executed"] == 0
            assert campaign["cached"] == 4
            health = client.healthz()
            assert health["jobs"]["simulations"] == 0
            assert health["jobs"]["store_hits"] >= 5
            assert health["result_cache"]["hits"] >= 5
        finally:
            second.close()

    def test_error_statuses(self, server):
        client = Client(server.url)
        with pytest.raises(ServerError) as missing:
            client.status("no-such-job")
        assert missing.value.status == 404
        with pytest.raises(ServerError) as malformed:
            client.submit({"kind": "scenario"})
        assert malformed.value.status == 400
        with pytest.raises(ServerError) as bad_option:
            client.submit(
                {"kind": "scenario", "spec": tiny_spec().to_dict(),
                 "options": {"turbo": 9}}
            )
        assert bad_option.value.status == 400
        with pytest.raises(ServerError) as no_route:
            client._request("GET", "/nope")
        assert no_route.value.status == 404
        request = urllib.request.Request(
            server.url + "/jobs", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as raw:
            urllib.request.urlopen(request, timeout=10)
        assert raw.value.code == 400

    def test_jobs_listing(self, server):
        client = Client(server.url)
        client.wait(client.submit_scenario(tiny_spec())["id"], timeout=120)
        listing = client._request("GET", "/jobs")["jobs"]
        assert len(listing) == 1
        assert listing[0]["state"] == "completed"


def _slow_points(monkeypatch, seconds=0.15):
    """Make each campaign point slow enough to interrupt mid-sweep."""
    import repro.campaign.runner as campaign_runner

    real = campaign_runner.run_scenario

    def slowed(spec, **kwargs):
        time.sleep(seconds)
        return real(spec, **kwargs)

    monkeypatch.setattr(campaign_runner, "run_scenario", slowed)


def _wait_for_progress(client, job_id, minimum=1, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = client.status(job_id)
        if len(job["progress"]) >= minimum or job["state"] in (
            "completed", "failed", "cancelled"
        ):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} made no progress within {timeout}s")


class TestCancelAndRecovery:
    def test_cancel_mid_campaign_leaves_a_resumable_store(
        self, tmp_path, monkeypatch
    ):
        store_dir = tmp_path / "store"
        server = ReproServer(port=0, workers=1, store_dir=store_dir)
        server.start()
        try:
            client = Client(server.url)
            with monkeypatch.context() as patch:
                _slow_points(patch)
                job = client.submit_campaign(tiny_sweep().to_dict())
                _wait_for_progress(client, job["id"])
                with pytest.raises(ServerError) as pending:
                    client.result(job["id"])
                assert pending.value.status == 409
                cancelled = client.cancel(job["id"])
                assert cancelled["id"] == job["id"]
                deadline = time.monotonic() + 60
                while client.status(job["id"])["state"] not in (
                    "cancelled", "completed"
                ):
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
            status = client.status(job["id"])
            stored = len(
                ResultStore(store_dir / "tiny-server-sweep.jsonl").by_point()
            )
            if status["state"] == "completed":
                pytest.skip("campaign finished before the cancel landed")
            assert 1 <= stored < 4
            # Resubmitting the identical payload resumes from the store.
            again = client.submit_campaign(tiny_sweep().to_dict())
            assert again["id"] == job["id"]
            result = client.wait(again["id"], timeout=300)
            assert result["complete"] is True
            assert result["skipped"] >= stored
            assert result["executed"] + result["skipped"] == 4
        finally:
            server.close()

    def test_kill_and_restart_resumes_in_flight_campaign(
        self, tmp_path, monkeypatch
    ):
        store_dir = tmp_path / "store"
        _slow_points(monkeypatch)
        first = ReproServer(port=0, workers=1, store_dir=store_dir)
        first.start()
        client = Client(first.url)
        job = client.submit_campaign(tiny_sweep().to_dict())
        _wait_for_progress(client, job["id"])
        first.close()  # SIGTERM semantics: drain without terminal journal

        stored_before = len(
            ResultStore(store_dir / "tiny-server-sweep.jsonl").by_point()
        )
        if stored_before >= 4:
            pytest.skip("campaign finished before the shutdown landed")

        second = ReproServer(port=0, workers=1, store_dir=store_dir)
        second.start()
        try:
            client = Client(second.url)
            assert client.healthz()["jobs"]["recovered"] == 1
            descriptor = client.status(job["id"])
            assert descriptor["recovered"] is True
            result = client.wait(job["id"], timeout=300)
            assert result["complete"] is True
            assert result["skipped"] >= stored_before
            assert result["executed"] + result["skipped"] == 4
        finally:
            second.close()


class TestDaemonProcess:
    def test_sigterm_clean_shutdown(self, tmp_path):
        """The python -m repro.server path: announce the resolved URL,
        serve a real client, drain on SIGTERM and exit 0."""
        repo = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.server", "--port", "0",
             "--store-dir", str(tmp_path / "store")],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"listening on (http://\S+)", banner)
            assert match, f"no listen banner in {banner!r}"
            client = Client(match.group(1))
            assert client.healthz()["status"] == "ok"
            result = client.wait(
                client.submit_scenario(tiny_spec())["id"], timeout=120
            )
            assert result["record"]["metrics"]["makespan_cycles"] > 0
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=60)
        except BaseException:
            process.kill()
            process.wait(timeout=10)
            raise
        assert process.returncode == 0, stderr
        assert "clean shutdown" in stdout


class TestObservabilityEndpoints:
    _SAMPLE = re.compile(
        r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE.+-]+(?:inf|nan)?$'
    )

    def test_metrics_endpoint_is_valid_exposition(self, server):
        client = Client(server.url)
        client.wait(client.submit_scenario(tiny_spec())["id"], timeout=120)
        text = client.metrics()
        assert "# TYPE repro_server_events_total counter" in text
        assert "# TYPE repro_server_jobs gauge" in text
        # Library-side metrics ride along on the same scrape.
        assert "repro_scenario_runs_total" in text
        seen = set()
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE ")), line
                continue
            assert self._SAMPLE.match(line), f"malformed sample line: {line!r}"
            key = line.rsplit(" ", 1)[0]
            assert key not in seen, f"duplicate sample {key!r}"
            seen.add(key)

    def test_metrics_reflect_job_events(self, server):
        client = Client(server.url)
        client.wait(client.submit_scenario(tiny_spec())["id"], timeout=120)
        client.submit_scenario(tiny_spec())  # dedup onto the same job
        text = client.metrics()
        assert 'repro_server_events_total{event="submitted"} 2' in text
        assert 'repro_server_events_total{event="deduplicated"} 1' in text
        assert 'repro_server_jobs{state="completed"} 1' in text
        # healthz is backed by the same registry, so they cannot disagree.
        health = client.healthz()
        assert health["jobs"]["submitted"] == 2
        assert health["jobs"]["deduplicated"] == 1

    def test_traced_daemon_captures_job_spans(self, tmp_path):
        instance = ReproServer(
            port=0, workers=1, store_dir=tmp_path / "store", trace=True
        )
        instance.start()
        try:
            client = Client(instance.url)
            job = client.submit_scenario(tiny_spec())
            client.wait(job["id"], timeout=120)
            payload = client.trace(job["id"])
            assert payload["tracing"] is True
            names = {span["name"] for span in payload["spans"]}
            assert "job" in names
            assert "scenario" in names
            assert all(span["track"] == f"job-{job['id']}"
                       for span in payload["spans"])
            assert client.status(job["id"])["spans"] == len(payload["spans"])
        finally:
            instance.close()

    def test_untraced_daemon_reports_no_spans(self, server):
        client = Client(server.url)
        job = client.submit_scenario(tiny_spec())
        client.wait(job["id"], timeout=120)
        payload = client.trace(job["id"])
        assert payload["tracing"] is False
        assert payload["spans"] == []
