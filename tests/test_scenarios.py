"""The scenario subsystem: spec round trips, registry errors, workload
builders, golden-model verification (including its failure paths) and the
scenario runner."""

import numpy as np
import pytest

from repro.cluster.cluster import ClusterConfig
from repro.cluster.engine import available_engines, get_engine
from repro.cluster.tiling import TileSchedule
from repro.mem.hmc import Hmc
from repro.scenarios import (
    FAMILIES,
    ScenarioSpec,
    build_workload,
    get_scenario,
    register_scenario,
    registered_scenarios,
    run_scenario,
)


class TestScenarioSpec:
    def test_dict_round_trip(self):
        spec = ScenarioSpec(
            name="rt",
            family="matmul",
            description="round trip",
            params={"m": 4, "k": 6, "n": 5},
            num_tiles=3,
            seed=7,
            num_vaults=1,
            clusters_per_vault=2,
            engine="scalar",
            memoize=False,
            parallel=2,
            stagger_cycles=5,
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = get_scenario("conv-tiled")
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_json_round_trip_with_tuple_params(self):
        """JSON turns tuples into lists; normalization keeps the identity."""
        spec = ScenarioSpec(
            name="rt2", family="conv", params={"image_shape": (8, 10)}
        )
        round_tripped = ScenarioSpec.from_json(spec.to_json())
        assert round_tripped == spec
        assert round_tripped.merged_params()["image_shape"] == (8, 10)

    def test_from_dict_rejects_unknown_fields(self):
        data = get_scenario("conv-tiled").to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            ScenarioSpec.from_dict(data)

    def test_from_dict_rejects_missing_required_fields(self):
        with pytest.raises(ValueError, match="family"):
            ScenarioSpec.from_dict({"name": "x"})

    def test_unknown_family_lists_choices(self):
        with pytest.raises(ValueError, match="matmul"):
            ScenarioSpec(name="x", family="fft")

    def test_unknown_engine_lists_choices(self):
        with pytest.raises(ValueError, match="vectorized"):
            ScenarioSpec(name="x", family="conv", engine="quantum")

    def test_unknown_param_rejected_at_construction(self):
        with pytest.raises(ValueError, match="kernel_size"):
            ScenarioSpec(name="x", family="conv", params={"kernel_size": 3})

    def test_params_merge_over_family_defaults(self):
        spec = ScenarioSpec(name="x", family="conv", params={"kernel": 5})
        merged = spec.merged_params()
        assert merged["kernel"] == 5
        assert merged["image_shape"] == (12, 14)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="conv", num_tiles=-1)
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", family="conv", parallel=-1)

    def test_system_config_carries_the_knobs(self):
        spec = ScenarioSpec(
            name="x", family="conv", num_vaults=1, clusters_per_vault=3,
            engine="scalar", stagger_cycles=3,
        )
        config = spec.system_config()
        assert config.num_clusters == 3
        assert config.engine == "scalar"
        assert config.stagger_cycles == 3


class TestRegistry:
    def test_one_scenario_per_family_is_registered(self):
        specs = [get_scenario(name) for name in registered_scenarios()]
        assert set(FAMILIES) <= {spec.family for spec in specs}
        assert len(registered_scenarios()) >= 4

    def test_unknown_scenario_lists_choices(self):
        with pytest.raises(ValueError, match="conv-tiled"):
            get_scenario("does-not-exist")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("conv-tiled")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(spec)
        # Explicit replace is allowed (and is a no-op with the same spec).
        assert register_scenario(spec, replace=True) is spec

    def test_engine_registry_round_trip(self):
        assert set(available_engines()) >= {"scalar", "vectorized"}
        for name in available_engines():
            assert get_engine(name).name == name
        with pytest.raises(ValueError, match="scalar"):
            get_engine("bogus")


class TestPlacements:
    def test_default_round_robin(self):
        tile = TileSchedule(commands=[object(), object(), object()])
        assert [ntx for ntx, _ in tile.jobs(2)] == [0, 1, 0]

    def test_explicit_placements(self):
        commands = [object(), object()]
        tile = TileSchedule(commands=commands, placements=[1, 1])
        assert tile.jobs(4) == [(1, commands[0]), (1, commands[1])]

    def test_length_mismatch_rejected(self):
        tile = TileSchedule(commands=[object()], placements=[0, 1])
        with pytest.raises(ValueError, match="placements"):
            tile.jobs(8)

    def test_out_of_range_placement_rejected(self):
        tile = TileSchedule(commands=[object()], placements=[9])
        with pytest.raises(ValueError, match="out of range"):
            tile.jobs(8)


def _run_family(name, **overrides):
    overrides.setdefault("num_tiles", 2)
    overrides.setdefault("num_vaults", 1)
    overrides.setdefault("clusters_per_vault", 2)
    return run_scenario(name, **overrides)


class TestWorkloadFamilies:
    @pytest.mark.parametrize("name", ["conv-tiled", "matmul-tiled",
                                      "stencil-laplace2d", "dnn-training-step"])
    def test_runs_and_verifies(self, name):
        outcome = _run_family(name)
        assert outcome.verified
        assert outcome.result.num_tiles == 2
        assert outcome.result.makespan_cycles > 0
        assert outcome.workload.references

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_verify_failure_path(self, name):
        """Corrupting any verified output region must fail verification."""
        spec = next(
            get_scenario(s) for s in registered_scenarios()
            if get_scenario(s).family == name
        )
        outcome = run_scenario(
            spec, num_tiles=1, num_vaults=1, clusters_per_vault=1
        )
        hmc = outcome.simulator.hmc
        for address, expected in outcome.workload.references:
            produced = hmc.memory.load_array(address, expected.shape)
            corrupted = produced.copy().ravel()
            corrupted[0] += np.float32(1.0)
            hmc.memory.store_array(address, corrupted.reshape(expected.shape))
            with pytest.raises(AssertionError):
                outcome.workload.verify(hmc)
            hmc.memory.store_array(address, produced)  # restore for the next region
        outcome.workload.verify(hmc)  # restored state passes again

    def test_build_workload_is_deterministic(self):
        spec = get_scenario("dnn-training-step").with_overrides(num_tiles=1)
        arrays = []
        for _ in range(2):
            hmc = Hmc()
            workload = build_workload(spec, hmc, ClusterConfig())
            arrays.append([expected for _, expected in workload.references])
        for a, b in zip(*arrays):
            assert np.array_equal(a, b)

    def test_memoized_parallel_scenario_is_exact(self):
        """The system-scale accelerations compose with every family."""
        plain = _run_family("dnn-training-step", num_tiles=4, memoize=False)
        fast = _run_family(
            "dnn-training-step", num_tiles=4, memoize=True, parallel=2
        )
        assert fast.result.cache_hits > 0
        assert fast.result.workers == 2
        assert fast.result.makespan_cycles == plain.result.makespan_cycles
        for a, b in zip(plain.output_arrays(), fast.output_arrays()):
            assert np.array_equal(a, b)  # bit-identical HMC buffers

    def test_conv_scenario_matches_legacy_workload_shape(self):
        """The conv family is the port of conv_tiled_workload: same tiling
        structure (bands, transfers) for the same shape parameters."""
        from repro.system import conv_tiled_workload

        spec = get_scenario("conv-tiled").with_overrides(num_tiles=2)
        hmc = Hmc()
        ported = build_workload(spec, hmc, ClusterConfig())
        legacy = conv_tiled_workload(Hmc(), num_tiles=2)
        assert len(ported.tiles) == len(legacy.tiles)
        for new_tile, old_tile in zip(ported.tiles, legacy.tiles):
            assert len(new_tile.commands) == len(old_tile.commands)
            assert new_tile.bytes_in == old_tile.bytes_in
            assert new_tile.bytes_out == old_tile.bytes_out


class TestRunnerSurface:
    def test_summary_names_the_scenario(self):
        outcome = _run_family("matmul-tiled")
        summary = outcome.summary()
        assert summary["scenario"] == "matmul-tiled"
        assert summary["family"] == "matmul"
        assert summary["verified"] is True

    def test_format_outcome_mentions_verification(self):
        from repro.scenarios import format_outcome

        outcome = _run_family("conv-tiled")
        rendered = format_outcome(outcome)
        assert "conv-tiled" in rendered
        assert "verified" in rendered

    def test_overrides_are_validated(self):
        with pytest.raises(ValueError, match="vectorized"):
            run_scenario("conv-tiled", engine="nope")
