"""The paper-artifact pipeline: registry errors, renderer snapshots,
campaign-backed artifact builds, the ``report`` CLI, the ``report`` bench
suite, and the regenerated-docs-are-clean acceptance check."""

import json
from pathlib import Path

import pytest

from repro.eval.__main__ import main as eval_main
from repro.report import (
    Artifact,
    ArtifactData,
    Section,
    ascii_bar_chart,
    generate_paper_results,
    generate_reference,
    get_artifact,
    heading_slug,
    iter_artifacts,
    markdown_table,
    register_artifact,
    registered_artifacts,
    render_artifact,
    render_document,
    report_payload,
    run_artifact,
    run_report,
)

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    """One campaign-store directory shared by the whole module, so the
    heavy quick campaigns run once and every later build resumes."""
    return tmp_path_factory.mktemp("report-stores")


@pytest.fixture(scope="module")
def generated(tmp_path_factory, store_dir):
    """One full quick report generation (path, results)."""
    out = tmp_path_factory.mktemp("report-out") / "paper_results.md"
    path, results = generate_paper_results(
        path=out, quick=True, store_dir=store_dir
    )
    return path, results


class TestRegistry:
    def test_unknown_artifact_lists_valid_names(self):
        with pytest.raises(ValueError, match="table1"):
            get_artifact("does-not-exist")

    def test_shipped_artifacts_cover_the_paper(self):
        reproduced = {artifact.reproduces for artifact in iter_artifacts()}
        assert {
            "Table I",
            "Table II",
            "Figure 3(b)",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "§II-C",
            "§IV",
        } <= reproduced
        assert len(registered_artifacts()) >= 9

    def test_duplicate_registration_rejected(self):
        artifact = get_artifact("table1")
        with pytest.raises(ValueError, match="already registered"):
            register_artifact(artifact)
        assert register_artifact(artifact, replace=True) is artifact

    def test_artifact_campaigns_are_registered_campaigns(self):
        """An artifact can only declare campaigns the registry resolves."""
        from repro.campaign import registered_campaigns

        known = set(registered_campaigns())
        for artifact in iter_artifacts():
            assert set(artifact.campaigns) <= known, artifact.name

    def test_simulation_backed_artifacts_declare_campaigns(self):
        """Acceptance: every simulated table/figure goes through the
        campaign stack (run_campaign always verifies); only the purely
        analytic artifacts may skip it."""
        analytic = {"fig7", "precision"}
        for artifact in iter_artifacts():
            if artifact.name in analytic:
                assert not artifact.campaigns
            else:
                assert artifact.campaigns, artifact.name


class TestRenderer:
    def test_markdown_table_snapshot(self):
        table = markdown_table(
            ("kernel", "Gflop/s"), [("CONV 3x3", 17.38), ("AXPY 16", 0.1)]
        )
        assert table == (
            "| kernel | Gflop/s |\n"
            "| --- | --- |\n"
            "| CONV 3x3 | 17.38 |\n"
            "| AXPY 16 | 0.100 |"
        )

    def test_markdown_table_escapes_pipes(self):
        assert "\\|" in markdown_table(("a|b",), [("c|d",)])

    def test_ascii_bar_chart_snapshot(self):
        chart = ascii_bar_chart([("a", 2.0), ("bb", 1.0)], width=4)
        assert chart == ("a  | #### 2.00\nbb | ## 1.00")

    def test_ascii_bar_chart_handles_empty_and_zero(self):
        assert ascii_bar_chart([]) == ""
        assert "0" in ascii_bar_chart([("z", 0.0)])

    def test_heading_slug_matches_github_style(self):
        assert heading_slug("Table I — cluster figures of merit") == (
            "table-i--cluster-figures-of-merit"
        )
        assert heading_slug("§II-C — PCS study") == "ii-c--pcs-study"

    def test_document_toc_anchors_match_headings(self, generated):
        _, results = generated
        text = render_document(results, quick=True)
        for result in results:
            title = f"{result.artifact.reproduces} — {result.artifact.title}"
            assert f"(#{heading_slug(title)})" in text
            assert f"## {title}" in text

    def test_duplicate_headings_get_github_suffixes(self):
        """TOC anchors follow GitHub's -N duplicate-slug rule."""
        from repro.report import ArtifactResult

        def build(context):
            return ArtifactData(sections=[Section(title="Same title")])

        def result(name):
            artifact = Artifact(
                name=name,
                title="same title",
                reproduces="Same title",
                description="d",
                build=build,
            )
            return ArtifactResult(
                artifact=artifact, data=build(None), quick=True
            )

        text = render_document([result("a"), result("b")], quick=True)
        # Headings in order: "Same title — same title", "Same title",
        # "Same title — same title" (-1), "Same title" (-1); the TOC must
        # link the second artifact to the suffixed anchor.
        assert "(#same-title--same-title)" in text
        assert "(#same-title--same-title-1)" in text

    def test_chart_sections_render_fenced(self):
        artifact = Artifact(
            name="_tmp",
            title="t",
            reproduces="r",
            description="d",
            build=lambda context: ArtifactData(
                sections=[Section(title="s", chart="x | #")]
            ),
        )
        rendered = render_artifact(run_artifact(artifact))
        assert "```text\nx | #\n```" in rendered


class TestArtifacts:
    def test_every_artifact_builds_sections_and_payload(self, generated):
        _, results = generated
        assert len(results) == len(registered_artifacts())
        for result in results:
            assert result.data.sections, result.artifact.name
            assert result.data.payload, result.artifact.name

    def test_fig3b_measures_one_element_per_cycle(self, generated):
        _, results = generated
        fig3b = next(r for r in results if r.artifact.name == "fig3b")
        throughput = fig3b.data.payload["throughput"]
        from repro.core.commands import NtxOpcode

        assert {row["opcode"] for row in throughput} == {
            op.value for op in NtxOpcode
        }
        for row in throughput:
            assert row["verified"] is True
            assert row["cycles_per_element"] == pytest.approx(1.0, abs=0.15)

    def test_campaign_backed_artifacts_are_verified(self, store_dir):
        """Every record an artifact consumed came from a verified run."""
        from repro.report.artifact import ArtifactContext

        context = ArtifactContext(quick=True, store_dir=store_dir)
        for artifact in iter_artifacts():
            for name in artifact.campaigns:
                records = context.records(name)
                assert records, name
                assert all(record["verified"] for record in records)

    def test_report_payload_shape(self, generated):
        _, results = generated
        payload = report_payload(results)
        assert payload["quick"] is True
        assert set(payload["artifacts"]) == set(registered_artifacts())
        assert json.dumps(payload)  # JSON-serialisable end to end

    def test_generation_is_deterministic(self, generated, store_dir, tmp_path):
        """Acceptance: a second run (resuming the same stores) is a no-op."""
        first_path, _ = generated
        again, _ = generate_paper_results(
            path=tmp_path / "again.md", quick=True, store_dir=store_dir
        )
        assert again.read_text(encoding="utf-8") == first_path.read_text(
            encoding="utf-8"
        )

    def test_committed_results_document_is_clean(self, generated):
        """Acceptance: docs/paper_results.md matches a fresh regeneration."""
        path, _ = generated
        committed = (REPO / "docs" / "paper_results.md").read_text(
            encoding="utf-8"
        )
        assert committed == path.read_text(encoding="utf-8"), (
            "docs/paper_results.md is stale; run "
            "python -m repro.eval report --all --quick"
        )

    def test_reference_document_is_clean(self):
        """Acceptance: docs/reference.md matches the registries."""
        committed = (REPO / "docs" / "reference.md").read_text(encoding="utf-8")
        assert committed == generate_reference(), (
            "docs/reference.md is stale; run python scripts/generate_docs.py"
        )


class TestCli:
    def test_report_list(self, capsys):
        assert eval_main(["report", "--list"]) == 0
        out = capsys.readouterr().out
        for name in registered_artifacts():
            assert name in out

    def test_report_single_analytic_artifact(self, capsys):
        assert eval_main(["report", "fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "| platform |" in out

    def test_report_unknown_artifact_fails_cleanly(self, capsys):
        assert eval_main(["report", "does-not-exist"]) == 2
        err = capsys.readouterr().err
        assert "registered artifacts" in err

    def test_report_without_selection_fails_cleanly(self, capsys):
        assert eval_main(["report"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_report_rejects_all_plus_names(self, capsys):
        assert eval_main(["report", "fig7", "--all"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_report_all_full_mode_requires_explicit_output(self, capsys):
        """Full-mode numbers must never silently overwrite the committed
        quick-mode document."""
        assert eval_main(["report", "--all"]) == 2
        assert "--output" in capsys.readouterr().err

    def test_default_results_path_is_repo_anchored(self):
        from repro.report import DEFAULT_RESULTS_PATH

        assert DEFAULT_RESULTS_PATH == REPO / "docs" / "paper_results.md"

    def test_report_all_quick_smoke(self, tmp_path, store_dir, capsys):
        """Acceptance: report --all --quick assembles the document."""
        out = tmp_path / "paper_results.md"
        json_out = tmp_path / "report.json"
        assert eval_main(
            [
                "report",
                "--all",
                "--quick",
                "--output", str(out),
                "--json", str(json_out),
                "--store-dir", str(store_dir),
            ]
        ) == 0
        text = out.read_text(encoding="utf-8")
        for artifact in iter_artifacts():
            assert artifact.reproduces in text
        payload = json.loads(json_out.read_text(encoding="utf-8"))
        assert set(payload["artifacts"]) == set(registered_artifacts())

    def test_epilog_lists_artifacts(self):
        from repro.eval.__main__ import _epilog

        epilog = _epilog()
        for name in registered_artifacts():
            assert name in epilog


class TestBenchSuite:
    def test_report_suite_gates_campaign_backed_artifacts(self):
        from repro.bench import run_suite, validate_document

        document = run_suite("report", quick=True)
        assert validate_document(document) == []
        names = [scenario["name"] for scenario in document["scenarios"]]
        expected = [
            f"report-{artifact.name}"
            for artifact in iter_artifacts()
            if artifact.campaigns
        ]
        assert names == expected
        for scenario in document["scenarios"]:
            assert scenario["simulated_cycles"] > 0
            assert scenario["points"] >= 2

    def test_warm_cache_report_simulates_zero_points(self, tmp_path):
        """Acceptance: against a warm global cache, a report run into a
        brand-new store directory serves every campaign point without
        simulating — the shared campaigns run once *ever*."""
        import repro.report.artifact as artifact_mod

        outcomes = []
        original = artifact_mod.run_campaign

        def recording(name, **kwargs):
            outcome = original(name, **kwargs)
            outcomes.append(outcome)
            return outcome

        cache = tmp_path / "cache"
        artifact_mod.run_campaign = recording
        try:
            run_report(
                ["table2", "fig6"], quick=True,
                store_dir=tmp_path / "cold", cache_dir=cache,
            )
            cold = list(outcomes)
            outcomes.clear()
            run_report(
                ["table2", "fig6"], quick=True,
                store_dir=tmp_path / "warm", cache_dir=cache,
            )
        finally:
            artifact_mod.run_campaign = original
        assert sum(outcome.executed_points for outcome in cold) > 0
        assert outcomes and all(
            outcome.executed_points == 0 for outcome in outcomes
        )
        assert all(
            outcome.cached_points == len(outcome.points)
            for outcome in outcomes
        )

    def test_run_report_shares_one_context(self, store_dir):
        """table2 and fig6 both consume dnn-scaling: one campaign run."""
        calls = []
        from repro.campaign import run_campaign as real_run_campaign

        def counting(name, **kwargs):
            calls.append(name if isinstance(name, str) else name.name)
            return real_run_campaign(name, **kwargs)

        import repro.report.artifact as artifact_mod

        original = artifact_mod.run_campaign
        artifact_mod.run_campaign = counting
        try:
            run_report(["table2", "fig6"], quick=True, store_dir=store_dir)
        finally:
            artifact_mod.run_campaign = original
        assert calls == ["dnn-scaling"]
