"""Tests of the reference FMAC chains and the error metrics."""

import math
from fractions import Fraction

import numpy as np
import pytest

from repro.softfloat import (
    dot_product_float32,
    dot_product_pcs,
    fmac_chain_exact,
    fmac_chain_float32,
    fmac_chain_pcs,
    max_abs_error,
    relative_rmse,
    rmse,
    ulp_error,
)


class TestChains:
    def test_exact_chain_matches_fraction(self, rng):
        a = rng.standard_normal(50).astype(np.float32)
        b = rng.standard_normal(50).astype(np.float32)
        expected = sum(
            Fraction(float(x)) * Fraction(float(y)) for x, y in zip(a, b)
        )
        assert fmac_chain_exact(a, b) == expected

    def test_pcs_chain_is_correctly_rounded_exact_sum(self, rng):
        a = rng.standard_normal(100).astype(np.float32)
        b = rng.standard_normal(100).astype(np.float32)
        exact = fmac_chain_exact(a, b)
        assert fmac_chain_pcs(a, b) == float(np.float32(float(exact)))

    def test_float32_chain_error_at_least_as_large(self, rng):
        a = rng.standard_normal(500).astype(np.float32)
        b = rng.standard_normal(500).astype(np.float32)
        exact = float(fmac_chain_exact(a, b))
        err_f32 = abs(fmac_chain_float32(a, b) - exact)
        err_pcs = abs(fmac_chain_pcs(a, b) - exact)
        assert err_pcs <= err_f32 + 1e-12

    def test_chains_agree_on_short_exact_data(self):
        a = [1.0, 2.0, 3.0]
        b = [4.0, 5.0, 6.0]
        assert dot_product_float32(a, b) == 32.0
        assert dot_product_pcs(a, b) == 32.0

    def test_init_value_used(self):
        assert fmac_chain_pcs([1.0], [1.0], init=5.0) == 6.0
        assert fmac_chain_float32([1.0], [1.0], init=5.0) == 6.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fmac_chain_pcs([1.0, 2.0], [1.0])


class TestErrorMetrics:
    def test_rmse_zero_for_identical(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_rmse_known_value(self):
        assert rmse([1.0, 3.0], [0.0, 0.0]) == pytest.approx(math.sqrt(5.0))

    def test_relative_rmse(self):
        assert relative_rmse([2.0], [1.0]) == pytest.approx(1.0)

    def test_relative_rmse_rejects_zero_reference(self):
        with pytest.raises(ValueError):
            relative_rmse([1.0], [0.0])

    def test_max_abs_error(self):
        assert max_abs_error([1.0, 5.0], [1.0, 2.0]) == 3.0

    def test_metrics_reject_length_mismatch(self):
        with pytest.raises(ValueError):
            rmse([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            max_abs_error([1.0], [1.0, 2.0])

    def test_metrics_reject_empty(self):
        with pytest.raises(ValueError):
            rmse([], [])

    def test_ulp_error(self):
        errors = ulp_error([1.0 + 2.0**-23], [1.0])
        assert errors[0] == pytest.approx(1.0)
