"""The unified observability layer (repro.obs): metrics registry
semantics and Prometheus rendering, span tracing with per-track
timelines, Chrome trace / JSONL export, trace_session scoping, the CLI
surfaces (--trace-out, the trace subcommand, -v/-q), and the guarantee
that instrumentation never perturbs simulation results."""

import json
import logging
import re

import numpy as np
import pytest

from repro import obs
from repro.campaign import SweepSpec, run_campaign
from repro.campaign.cache import GlobalResultCache
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import DEFAULT_BUCKETS, REGISTRY, MetricsRegistry
from repro.obs.trace import (
    TRACER,
    Span,
    Tracer,
    chrome_trace,
    read_spans_jsonl,
    write_spans_jsonl,
)
from repro.options import ExecutionOptions
from repro.scenarios import ScenarioSpec, run_scenario

_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9eE.+-]+$|"
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf$"
)


def tiny_spec(**overrides) -> ScenarioSpec:
    settings = dict(
        name="tiny-obs-conv",
        family="conv",
        params={"image_shape": (8, 10)},
        num_tiles=2,
        num_vaults=1,
        clusters_per_vault=1,
    )
    settings.update(overrides)
    return ScenarioSpec(**settings)


def tiny_sweep(**overrides) -> SweepSpec:
    settings = dict(
        name="tiny-obs-sweep",
        description="test sweep",
        base=tiny_spec(),
        axes={"num_tiles": (1, 2, 3)},
    )
    settings.update(overrides)
    return SweepSpec(**settings)


class TestMetricsRegistry:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "x")
        gauge = registry.gauge("repro_y", "y")
        hist = registry.histogram("repro_z_seconds", "z")
        counter.inc()
        gauge.set(5)
        hist.observe(0.1)
        assert counter.value() == 0.0
        assert gauge.value() == 0.0
        assert hist.count() == 0

    def test_counter_labels_and_values(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("repro_x_total", "x", labelnames=("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        assert counter.value(kind="a") == 1.0
        assert counter.value(kind="b") == 2.0
        with pytest.raises(ValueError):
            counter.inc(-1, kind="a")
        with pytest.raises(ValueError):
            counter.inc(other="a")  # undeclared label

    def test_reregistration_returns_same_instrument(self):
        registry = MetricsRegistry(enabled=True)
        first = registry.counter("repro_x_total", "x")
        second = registry.counter("repro_x_total", "x")
        assert first is second
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", "now a gauge")
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", "x", labelnames=("k",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("0bad", "x")
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", "x", labelnames=("0bad",))

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram(
            "repro_z_seconds", "z", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        rendered = registry.render()
        assert 'repro_z_seconds_bucket{le="0.1"} 1' in rendered
        assert 'repro_z_seconds_bucket{le="1"} 2' in rendered
        assert 'repro_z_seconds_bucket{le="+Inf"} 3' in rendered
        assert "repro_z_seconds_count 3" in rendered
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.55)

    def test_histogram_time_context_manager(self):
        registry = MetricsRegistry(enabled=True)
        hist = registry.histogram("repro_z_seconds", "z")
        with hist.time():
            pass
        assert hist.count() == 1
        registry.set_enabled(False)
        with hist.time():
            pass
        assert hist.count() == 1  # disabled: no observation

    def test_reset_keeps_instruments_but_zeroes_values(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("repro_x_total", "x")
        counter.inc(3)
        registry.reset()
        assert registry.get("repro_x_total") is counter
        assert counter.value() == 0.0

    def test_render_is_valid_exposition_without_duplicates(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("repro_x_total", "x", labelnames=("k",))
        counter.inc(k="a")
        counter.inc(k='quo"te\\n')
        registry.gauge("repro_y", "y").set(2.5)
        registry.histogram("repro_z_seconds", "z").observe(0.2)
        text = registry.render()
        seen = set()
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE ")), line
                continue
            assert _SAMPLE_LINE.match(line), f"malformed: {line!r}"
            key = line.rsplit(" ", 1)[0]
            assert key not in seen, f"duplicate sample {key!r}"
            seen.add(key)
        # Label values are escaped, not emitted raw.
        assert '\\"' in text and "\\\\" in text

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestTracer:
    def test_disabled_span_is_shared_null(self):
        tracer = Tracer()
        assert tracer.span("a") is tracer.span("b")
        with tracer.span("a"):
            pass
        assert tracer.spans() == []

    def test_spans_record_track_and_args(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        with tracer.track("worker-1"):
            with tracer.span("outer", name="custom"):
                with tracer.span("inner"):
                    pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert all(s.track == "worker-1" for s in spans)
        assert spans[1].args == {"name": "custom"}

    def test_drain_by_track_prefix(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        tracer.record("a", "worker-1", 10, 1.0)
        tracer.record("b", "worker-1/cluster-0", 11, 1.0)
        tracer.record("c", "main", 12, 1.0)
        drained = tracer.drain(track_prefix="worker-1")
        assert {s.name for s in drained} == {"a", "b"}
        assert {s.name for s in tracer.spans()} == {"c"}

    def test_limit_drops_and_counts(self):
        tracer = Tracer(limit=2)
        tracer.set_enabled(True)
        for i in range(4):
            tracer.record(f"s{i}", "main", i, 1.0)
        assert len(tracer.spans()) == 2
        assert tracer.dropped == 2

    def test_ingest_round_trips_worker_payloads(self):
        tracer = Tracer()
        tracer.set_enabled(True)
        payload = Span("tile", "worker-3", 42, 7.5, {"index": 1}).to_dict()
        tracer.ingest([payload])
        (span,) = tracer.spans()
        assert (span.name, span.track, span.ts_us) == ("tile", "worker-3", 42)
        assert span.args == {"index": 1}

    def test_jsonl_round_trip(self, tmp_path):
        spans = [
            Span("a", "main", 1, 2.0),
            Span("b", "worker-0", 3, 4.0, {"k": "v"}),
        ]
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(spans, path) == 2
        assert read_spans_jsonl(path) == spans

    def test_chrome_trace_structure(self):
        spans = [
            Span("outer", "main", 100, 50.0),
            Span("inner", "main", 110, 10.0),
            Span("tile", "worker-1", 105, 20.0),
        ]
        doc = chrome_trace(spans)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["args"]["name"] for e in meta} == {"main", "worker-1"}
        assert len(complete) == 3
        # Timestamps are rebased to the earliest span.
        assert min(e["ts"] for e in complete) == 0
        tids = {e["tid"] for e in complete}
        assert tids == {e["tid"] for e in meta}


def _assert_tracks_nest(spans, tol_us=200.0):
    """Per track: sorted spans are monotonic and disjoint-or-nested."""
    by_track = {}
    for span in spans:
        by_track.setdefault(span.track, []).append(span)
    for track, items in by_track.items():
        items.sort(key=lambda s: (s.ts_us, -s.dur_us))
        stack = []  # open ancestor end times
        last_ts = None
        for span in items:
            assert last_ts is None or span.ts_us >= last_ts, track
            last_ts = span.ts_us
            end = span.ts_us + span.dur_us
            while stack and span.ts_us >= stack[-1] - tol_us:
                stack.pop()
            if stack:
                assert end <= stack[-1] + tol_us, (
                    f"span {span.name!r} overlaps its sibling on {track!r}"
                )
            stack.append(end)


class TestInstrumentedRuns:
    def test_traced_scenario_produces_nested_spans(self):
        with obs.trace_session(trace=True, metrics=True) as tracer:
            run_scenario(tiny_spec())
            spans = tracer.spans()
        names = {s.name for s in spans}
        assert {"scenario", "build-workload", "verify", "schedule"} <= names
        _assert_tracks_nest(spans)

    def test_parallel_run_ships_worker_tracks_home(self):
        spec = tiny_spec(
            name="tiny-obs-parallel",
            num_tiles=4,
            num_vaults=2,
            clusters_per_vault=2,
            parallel=2,
        )
        with obs.trace_session(trace=True) as tracer:
            run_scenario(spec, options=ExecutionOptions(batch=False))
            spans = tracer.spans()
        worker_tracks = {s.track for s in spans if s.track.startswith("worker-")}
        assert worker_tracks, {s.track for s in spans}
        assert any(s.name == "worker-task" for s in spans)

    def test_tracing_never_perturbs_results(self):
        plain = run_scenario(tiny_spec())
        with obs.trace_session(trace=True, metrics=True):
            traced = run_scenario(tiny_spec())
        assert traced.result.makespan_cycles == plain.result.makespan_cycles
        assert traced.result.cache_hit_rate == plain.result.cache_hit_rate
        for ours, theirs in zip(traced.output_arrays(), plain.output_arrays()):
            assert np.array_equal(ours, theirs)

    def test_traced_campaign_store_is_byte_identical(self, tmp_path):
        cache = GlobalResultCache(tmp_path / "cache")
        run_campaign(
            tiny_sweep(), store_path=tmp_path / "cold.jsonl", cache=cache
        )
        with obs.trace_session(trace=True, metrics=True):
            outcome = run_campaign(
                tiny_sweep(), store_path=tmp_path / "warm.jsonl", cache=cache
            )
        assert outcome.cached_points == 3
        cold = (tmp_path / "cold.jsonl").read_bytes()
        warm = (tmp_path / "warm.jsonl").read_bytes()
        assert cold == warm

    def test_cache_counters_feed_the_summary(self):
        before = obs.cache_counters()
        with obs.trace_session(metrics=True):
            run_scenario(tiny_spec())
        summary = obs.format_cache_summary(since=before)
        assert summary.startswith("cache efficiency: tile-timing ")
        assert "global result cache off" in summary

    def test_trace_session_restores_prior_state(self, tmp_path):
        assert not TRACER.enabled and not REGISTRY.enabled
        out = tmp_path / "trace.json"
        with obs.trace_session(trace_out=str(out), metrics=True) as tracer:
            assert tracer.enabled and REGISTRY.enabled
            tracer.record("x", "main", 1, 2.0)
        assert not TRACER.enabled and not REGISTRY.enabled
        assert TRACER.spans() == []
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_trace_session_writes_jsonl_for_jsonl_suffix(self, tmp_path):
        out = tmp_path / "spans.jsonl"
        with obs.trace_session(trace=True, trace_out=str(out)) as tracer:
            tracer.record("x", "main", 1, 2.0)
        (span,) = read_spans_jsonl(out)
        assert span.name == "x"


class TestExecutionOptionsTraceFields:
    def test_defaults_off(self):
        options = ExecutionOptions()
        assert options.trace is False
        assert options.trace_out is None

    def test_trace_out_implies_trace(self, tmp_path):
        options = ExecutionOptions(trace_out=str(tmp_path / "t.json"))
        assert options.trace is True

    def test_trace_is_never_a_spec_override(self, tmp_path):
        options = ExecutionOptions(trace=True, trace_out=str(tmp_path / "t"))
        assert "trace" not in options.spec_overrides()
        assert "trace_out" not in options.spec_overrides()

    def test_non_bool_trace_rejected(self):
        with pytest.raises(ValueError):
            ExecutionOptions(trace=1)

    def test_round_trips_through_dict(self, tmp_path):
        options = ExecutionOptions(trace_out=str(tmp_path / "t.json"))
        assert ExecutionOptions.from_dict(options.to_dict()) == options


class TestLogging:
    def test_get_logger_nests_under_repro(self):
        assert get_logger().name == "repro"
        assert get_logger("campaign").name == "repro.campaign"
        assert get_logger("repro.server").name == "repro.server"

    def test_configure_is_idempotent(self):
        logger = configure_logging(0)
        configure_logging(0)
        assert len(logger.handlers) == 1

    def test_verbosity_levels(self):
        assert configure_logging(-1).level == logging.WARNING
        assert configure_logging(0).level == logging.INFO
        assert configure_logging(1).level == logging.DEBUG


class TestCli:
    def test_scenario_run_prints_cache_summary(self, capsys):
        from repro.eval.__main__ import main as eval_main

        assert eval_main(["scenario", "run", "conv-tiled", "--tiles", "2"]) == 0
        out = capsys.readouterr().out
        assert "cache efficiency: tile-timing " in out

    def test_scenario_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        from repro.eval.__main__ import main as eval_main

        out = tmp_path / "trace.json"
        rc = eval_main(
            ["scenario", "run", "conv-tiled", "--tiles", "2",
             "--trace-out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "scenario" in names
        capsys.readouterr()

    def test_trace_subcommand_converts_jsonl(self, tmp_path, capsys):
        from repro.eval.__main__ import main as eval_main

        spans_path = tmp_path / "spans.jsonl"
        write_spans_jsonl([Span("a", "main", 1, 2.0)], spans_path)
        out = tmp_path / "converted.json"
        rc = eval_main(["trace", str(spans_path), "--output", str(out)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert sum(e["ph"] == "X" for e in doc["traceEvents"]) == 1

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        from repro.eval.__main__ import main as eval_main

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n", encoding="utf-8")
        assert eval_main(["trace", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_campaign_quiet_silences_progress(self, tmp_path, capsys):
        from repro.eval.__main__ import main as eval_main

        store = tmp_path / "store.jsonl"
        rc = eval_main(
            ["campaign", "run", "conv-geometry-sweep", "--quick", "-q",
             "--store", str(store)]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "  ran " not in captured.err
        assert "11 points" in captured.out

    def test_campaign_default_progress_on_stderr(self, tmp_path, capsys):
        from repro.eval.__main__ import main as eval_main

        store = tmp_path / "store.jsonl"
        rc = eval_main(
            ["campaign", "run", "conv-geometry-sweep", "--quick",
             "--store", str(store)]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "  ran " in captured.err
        assert "  ran " not in captured.out
