"""Unit tests for the RV32IM decoder, assembler and instruction-set simulator."""

import pytest

from repro.mem.memory import Memory
from repro.riscv.assembler import AssemblerError, assemble
from repro.riscv.cpu import Cpu, CpuConfig, Trap
from repro.riscv.decoder import DecodeError, decode
from repro.riscv.registers import RegisterFile, reg_index


class _RamBus:
    """A trivial flat RAM bus for CPU tests."""

    def __init__(self, size=64 * 1024):
        self.mem = Memory(size)

    def read_u32(self, address):
        return self.mem.read_u32(address)

    def write_u32(self, address, value):
        self.mem.write_u32(address, value)

    def read_u16(self, address):
        return self.mem.read_u16(address)

    def write_u16(self, address, value):
        self.mem.write_u16(address, value)

    def read_u8(self, address):
        return self.mem.read_u8(address)

    def write_u8(self, address, value):
        self.mem.write_u8(address, value)


def _run(source, max_instructions=100_000, bus=None):
    bus = bus or _RamBus()
    program = assemble(source)
    bus.mem.write_bytes(0, program.to_bytes())
    cpu = Cpu(bus, config=CpuConfig(reset_pc=0))
    cpu.run(max_instructions=max_instructions)
    return cpu, bus


class TestRegisterFile:
    def test_x0_is_hardwired_to_zero(self):
        regs = RegisterFile()
        regs.write(0, 123)
        assert regs.read(0) == 0

    def test_abi_names(self):
        assert reg_index("a0") == 10
        assert reg_index("sp") == 2
        assert reg_index("x31") == 31
        assert reg_index("fp") == reg_index("s0")
        with pytest.raises(ValueError):
            reg_index("bogus")

    def test_signed_read(self):
        regs = RegisterFile()
        regs["t0"] = 0xFFFFFFFF
        assert regs.read_signed(reg_index("t0")) == -1


class TestDecoder:
    def test_addi_decode(self):
        # addi a0, a1, -3
        word = assemble("addi a0, a1, -3").words[0]
        inst = decode(word)
        assert inst.mnemonic == "addi" and inst.rd == 10 and inst.rs1 == 11 and inst.imm == -3

    def test_decode_rejects_garbage(self):
        with pytest.raises(DecodeError):
            decode(0xFFFFFFFF)

    @pytest.mark.parametrize(
        "source",
        [
            "add a0, a1, a2", "sub t0, t1, t2", "xor s0, s1, s2", "sltu a0, a1, a2",
            "mul a0, a1, a2", "divu a3, a4, a5", "lw a0, 8(sp)", "sw a1, -4(sp)",
            "lui a0, 0x12345", "auipc a1, 1", "jal ra, 8", "jalr x0, ra, 0",
            "beq a0, a1, 16", "bltu t0, t1, -8", "slli a0, a0, 3", "srai a2, a2, 7",
            "lb a0, 0(a1)", "lhu a2, 2(a3)", "sb a4, 1(a5)", "fence", "ecall", "ebreak",
        ],
    )
    def test_assembler_decoder_round_trip(self, source):
        word = assemble(source).words[0]
        inst = decode(word)
        assert inst.mnemonic == source.split()[0]


class TestAssembler:
    def test_labels_and_branches(self):
        program = assemble(
            """
            start:  addi t0, x0, 3
            loop:   addi t0, t0, -1
                    bnez t0, loop
                    ecall
            """
        )
        assert len(program.words) == 4
        assert "loop" in program.symbols

    def test_li_expands_to_two_instructions(self):
        program = assemble("li a0, 0x12345678")
        assert len(program.words) == 2

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1")

    def test_out_of_range_immediate_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("addi a0, a0, 5000")


class TestCpuExecution:
    def test_arithmetic_loop(self):
        cpu, _ = _run(
            """
                li a0, 0
                li t0, 1
                li t1, 101
            loop:
                add a0, a0, t0
                addi t0, t0, 1
                bne t0, t1, loop
                ecall
            """
        )
        assert cpu.exit_code == 5050

    def test_memory_load_store(self):
        cpu, bus = _run(
            """
                li t0, 0x100
                li t1, 0xDEAD
                sw t1, 0(t0)
                lw a0, 0(t0)
                sh t1, 8(t0)
                lhu a1, 8(t0)
                sb t1, 12(t0)
                lbu a2, 12(t0)
                ecall
            """
        )
        assert cpu.exit_code == 0xDEAD
        assert cpu.regs["a1"] == 0xDEAD
        assert cpu.regs["a2"] == 0xAD
        assert bus.mem.read_u32(0x100) == 0xDEAD

    def test_signed_loads(self):
        cpu, _ = _run(
            """
                li t0, 0x200
                li t1, -1
                sb t1, 0(t0)
                lb a0, 0(t0)
                ecall
            """
        )
        assert cpu.exit_code == -1

    def test_mul_div_rem(self):
        cpu, _ = _run(
            """
                li t0, -7
                li t1, 3
                mul a0, t0, t1
                div a1, t0, t1
                rem a2, t0, t1
                ecall
            """
        )
        assert cpu.exit_code == -21
        assert cpu.regs.read_signed(reg_index("a1")) == -2  # truncation toward zero
        assert cpu.regs.read_signed(reg_index("a2")) == -1

    def test_division_by_zero_semantics(self):
        cpu, _ = _run(
            """
                li t0, 5
                div a0, t0, x0
                remu a1, t0, x0
                ecall
            """
        )
        assert cpu.exit_code == -1  # all ones
        assert cpu.regs["a1"] == 5

    def test_function_call_and_return(self):
        cpu, _ = _run(
            """
                li a0, 20
                call double
                ecall
            double:
                slli a0, a0, 1
                ret
            """
        )
        assert cpu.exit_code == 40

    def test_shift_and_compare(self):
        cpu, _ = _run(
            """
                li t0, -16
                srai t1, t0, 2
                srli t2, t0, 28
                slt a0, t0, x0
                sltu a1, x0, t0
                add a0, a0, a1
                add a0, a0, t2
                ecall
            """
        )
        # slt(-16,0)=1, sltu(0, big)=1, srli(-16,28)=0xF -> 1+1+15 = 17
        assert cpu.exit_code == 17

    def test_cycle_csr_increases(self):
        cpu, _ = _run(
            """
                csrr t0, cycle
                nop
                nop
                csrr t1, cycle
                sub a0, t1, t0
                ecall
            """
        )
        assert cpu.exit_code >= 2

    def test_instruction_limit_trap(self):
        with pytest.raises(Trap):
            _run("loop: j loop", max_instructions=100)

    def test_ecall_handler_can_continue(self):
        bus = _RamBus()
        program = assemble("ecall\n ecall\n")
        bus.mem.write_bytes(0, program.to_bytes())
        cpu = Cpu(bus, config=CpuConfig(reset_pc=0))
        seen = []

        def handler(c):
            seen.append(c.pc)
            return len(seen) < 2  # handle the first ecall, halt on the second

        cpu.ecall_handler = handler
        cpu.run()
        assert len(seen) == 2
