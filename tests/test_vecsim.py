"""Golden parity of the vectorized cycle engine against the scalar engine.

The vectorized engine must be a drop-in replacement: identical memory
contents on streaming kernels, identical static counters (flops,
iterations), and timing/conflict statistics that agree with the scalar
reference on fixed-seed golden workloads.  The workloads here are
deterministic, so the assertions are tight — the conflict-statistics
checks are exact where the two machines are behaviourally identical and
tolerance-banded only where the engines may legitimately diverge
(store-to-load forwarding, shared same-address grants).
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ClusterConfig
from repro.cluster.sim import ClusterSimulator
from repro.core.commands import AguConfig, InitSource, LoopConfig, NtxCommand, NtxOpcode
from repro.core.controller import NtxController
from repro.core.vecops import command_streams
from repro.kernels.blas import axpy_commands
from repro.kernels.conv import conv2d_commands
from repro.mem.interconnect import MemoryRequest, TcdmInterconnect
from repro.mem.tcdm import TcdmConfig


def _conv_setup(cluster, rng, image_shape=(20, 22), kernel=3):
    img = rng.standard_normal(image_shape).astype(np.float32)
    weights = rng.standard_normal((kernel, kernel)).astype(np.float32)
    height, width = image_shape
    out_h, out_w = height - kernel + 1, width - kernel + 1
    sizes = [img.nbytes, weights.nbytes, out_h * out_w * 4] * cluster.config.num_ntx
    addresses = cluster.tcdm.alloc_layout(sizes)
    jobs = []
    outs = []
    for i in range(cluster.config.num_ntx):
        img_addr, w_addr, out_addr = addresses[3 * i : 3 * i + 3]
        cluster.stage_in(img_addr, img)
        cluster.stage_in(w_addr, weights)
        jobs.append(
            (i, conv2d_commands(height, width, kernel, img_addr, w_addr, out_addr)[0])
        )
        outs.append(out_addr)
    return img, weights, jobs, outs, (out_h, out_w)


def _run_both(build_jobs, **run_kwargs):
    """Run the same fixed-seed workload through both engines."""
    results = {}
    outputs = {}
    for engine in ("scalar", "vectorized"):
        cluster = Cluster()
        jobs, outs, out_shape = build_jobs(cluster)
        result = ClusterSimulator(cluster, engine=engine).run(jobs, **run_kwargs)
        results[engine] = result
        outputs[engine] = [cluster.stage_out(addr, out_shape) for addr in outs]
    return results, outputs


class TestCommandStreams:
    """The vectorized controller must replay the scalar controller exactly."""

    def _reference(self, command):
        controller = NtxController(command)
        ops = list(controller.micro_ops())
        return ops

    @pytest.mark.parametrize(
        "command",
        [
            conv2d_commands(10, 12, 3, 0x1000_0000, 0x1000_1000, 0x1000_2000)[0],
            axpy_commands(33, 0x1000_0000, 0x1000_0100, 0x1000_0200)[0],
            NtxCommand(  # partial-sum stores: store level below init level
                opcode=NtxOpcode.MAC,
                loops=LoopConfig.nest(4, 3, 2),
                agu0=AguConfig(base=0x1000_0000, strides=(4, 4, 4, 0, 0)),
                agu1=AguConfig(base=0x1000_0400, strides=(4, -12, 8, 0, 0)),
                agu2=AguConfig(base=0x1000_0800, strides=(0, 4, 8, 0, 0)),
                init_level=2,
                store_level=1,
                init_source=InitSource.AGU2,
            ),
            NtxCommand(  # no write-back at all
                opcode=NtxOpcode.MAX,
                loops=LoopConfig.nest(17),
                agu0=AguConfig(base=0x1000_0000, strides=(4, 0, 0, 0, 0)),
                writeback=False,
            ),
        ],
    )
    def test_streams_match_controller(self, command):
        ops = self._reference(command)
        streams = command_streams(command)
        assert streams.total == len(ops)
        for t, op in enumerate(ops):
            if streams.read0 is not None:
                assert streams.read0[t] == op.read0
            else:
                assert op.read0 is None
            if streams.read1 is not None:
                assert streams.read1[t] == op.read1
            else:
                assert op.read1 is None
            assert (t in streams.init_ts) == op.init
            if op.init_read is not None:
                position = np.searchsorted(streams.init_ts, t)
                assert streams.init_read_addrs[position] == op.init_read
            if op.store is not None:
                position = np.searchsorted(streams.store_ts, t)
                assert streams.store_addrs[position] == op.store
            else:
                assert t not in streams.store_ts


class TestGoldenParity:
    """Fixed-seed workloads: both engines must agree."""

    def test_conv_parity_is_exact(self):
        """Streaming conv: the two machines are behaviourally identical."""

        def build(cluster):
            rng = np.random.default_rng(0xC0FFEE)
            _, _, jobs, outs, out_shape = _conv_setup(cluster, rng)
            return jobs, outs, out_shape

        results, outputs = _run_both(build)
        scalar, vectorized = results["scalar"], results["vectorized"]
        assert vectorized.cycles == scalar.cycles
        assert vectorized.tcdm_requests == scalar.tcdm_requests
        assert vectorized.tcdm_conflicts == scalar.tcdm_conflicts
        assert vectorized.flops == scalar.flops
        assert vectorized.iterations == scalar.iterations
        assert vectorized.per_ntx_active == scalar.per_ntx_active
        assert vectorized.per_ntx_stall == scalar.per_ntx_stall
        for out_s, out_v in zip(outputs["scalar"], outputs["vectorized"]):
            np.testing.assert_allclose(out_v, out_s, rtol=1e-6, atol=1e-7)

    def test_conv_parity_banded_guarantee(self):
        """The documented tolerance guarantee on the golden workload."""

        def build(cluster):
            rng = np.random.default_rng(2019)
            _, _, jobs, outs, out_shape = _conv_setup(cluster, rng, (26, 28))
            return jobs, outs, out_shape

        results, _ = _run_both(build)
        scalar, vectorized = results["scalar"], results["vectorized"]
        assert vectorized.conflict_probability == pytest.approx(
            scalar.conflict_probability, abs=0.01
        )
        assert vectorized.cycles == pytest.approx(scalar.cycles, rel=0.02)
        assert vectorized.utilization == pytest.approx(scalar.utilization, abs=0.02)

    def test_parity_with_dma_traffic(self):
        def build(cluster):
            rng = np.random.default_rng(7)
            _, _, jobs, outs, out_shape = _conv_setup(cluster, rng, (14, 16))
            return jobs, outs, out_shape

        results, _ = _run_both(build, dma_requests_per_cycle=0.75)
        scalar, vectorized = results["scalar"], results["vectorized"]
        assert vectorized.cycles == scalar.cycles
        assert vectorized.tcdm_requests == scalar.tcdm_requests
        assert vectorized.tcdm_conflicts == scalar.tcdm_conflicts

    def test_parity_single_ntx_all_opcode_shapes(self):
        """Single streamer (fig3b shape): elementwise and reduction loops."""
        for opcode in NtxOpcode:
            elementwise = not opcode.is_reduction
            n = 96

            def build(cluster, opcode=opcode, elementwise=elementwise):
                rng = np.random.default_rng(5)
                a_addr, b_addr, out_addr = cluster.tcdm.alloc_layout([n * 4] * 3)
                cluster.stage_in(a_addr, rng.standard_normal(n).astype(np.float32))
                cluster.stage_in(b_addr, rng.standard_normal(n).astype(np.float32))
                command = NtxCommand(
                    opcode=opcode,
                    loops=LoopConfig.nest(n),
                    agu0=AguConfig(base=a_addr, strides=(4, 0, 0, 0, 0)),
                    agu1=AguConfig(base=b_addr, strides=(4, 0, 0, 0, 0)),
                    agu2=AguConfig(
                        base=out_addr, strides=((4 if elementwise else 0), 0, 0, 0, 0)
                    ),
                    init_level=0 if elementwise else 1,
                    store_level=0 if elementwise else 1,
                    init_source=InitSource.ZERO,
                    scalar=0.5,
                )
                shape = (n,) if elementwise else (1,)
                return [(0, command)], [out_addr], shape

            results, outputs = _run_both(build)
            scalar, vectorized = results["scalar"], results["vectorized"]
            assert vectorized.cycles == scalar.cycles, opcode
            assert vectorized.tcdm_conflicts == scalar.tcdm_conflicts, opcode
            np.testing.assert_allclose(
                outputs["vectorized"][0], outputs["scalar"][0], rtol=1e-6, atol=1e-7,
                err_msg=str(opcode),
            )

    def test_parity_raw_hazard_fallback(self):
        """In-place AXPY applied twice: exercises the exact fallback path."""
        n = 64

        def build(cluster):
            rng = np.random.default_rng(11)
            a_addr, x_addr, y_addr = cluster.tcdm.alloc_layout([4, n * 4, n * 4])
            cluster.stage_in(a_addr, np.array([2.0], np.float32))
            cluster.stage_in(x_addr, rng.standard_normal(n).astype(np.float32))
            cluster.stage_in(y_addr, rng.standard_normal(n).astype(np.float32))
            command = axpy_commands(n, a_addr, x_addr, y_addr)[0]
            return [(0, command), (0, command)], [y_addr], (n,)

        results, outputs = _run_both(build)
        # The data plane must be bit-exact here (same soft-float path).
        np.testing.assert_array_equal(outputs["vectorized"][0], outputs["scalar"][0])
        assert results["vectorized"].flops == results["scalar"].flops

    def test_partial_sum_stores_parity(self):
        """store_level < init_level: running partial sums are written back."""

        def build(cluster):
            rng = np.random.default_rng(3)
            a_addr, b_addr, out_addr = cluster.tcdm.alloc_layout([96, 96, 96])
            cluster.stage_in(a_addr, rng.standard_normal(24).astype(np.float32))
            cluster.stage_in(b_addr, rng.standard_normal(24).astype(np.float32))
            command = NtxCommand(
                opcode=NtxOpcode.MAC,
                loops=LoopConfig.nest(4, 3, 2),
                agu0=AguConfig(base=a_addr, strides=(4, 4, 4, 0, 0)),
                agu1=AguConfig(base=b_addr, strides=(4, -12, 8, 0, 0)),
                agu2=AguConfig(base=out_addr, strides=(0, 4, 8, 0, 0)),
                init_level=2,
                store_level=1,
                init_source=InitSource.ZERO,
            )
            return [(0, command)], [out_addr], (6,)

        results, outputs = _run_both(build)
        np.testing.assert_allclose(
            outputs["vectorized"][0], outputs["scalar"][0], rtol=1e-6, atol=1e-7
        )
        assert results["vectorized"].cycles == results["scalar"].cycles

    def test_small_cluster_parity(self):
        def build(cluster):
            rng = np.random.default_rng(23)
            _, _, jobs, outs, out_shape = _conv_setup(cluster, rng, (12, 14))
            return jobs[:2], outs[:2], out_shape

        results, outputs = _run_both(build, stagger_cycles=0)
        assert results["vectorized"].cycles == results["scalar"].cycles
        for out_s, out_v in zip(outputs["scalar"], outputs["vectorized"]):
            np.testing.assert_allclose(out_v, out_s, rtol=1e-6, atol=1e-7)


class TestEdgeConfigurations:
    def test_zero_setup_and_drain_cycles_terminate(self):
        """A zero-cycle setup/drain phase must not wedge the engine."""
        from repro.core.ntx import NtxConfig

        cycle_counts = {}
        for engine in ("scalar", "vectorized"):
            config = ClusterConfig(
                ntx=NtxConfig(command_setup_cycles=0, writeback_drain_cycles=0)
            )
            cluster = Cluster(config)
            a_addr, x_addr, y_addr = cluster.tcdm.alloc_layout([4, 16, 16])
            cluster.stage_in(a_addr, np.array([2.0], np.float32))
            cluster.stage_in(x_addr, np.ones(4, np.float32))
            cluster.stage_in(y_addr, np.ones(4, np.float32))
            command = axpy_commands(4, a_addr, x_addr, y_addr)[0]
            result = ClusterSimulator(cluster, engine=engine).run(
                [(0, command)], max_cycles=10_000
            )
            cycle_counts[engine] = result.cycles
        assert cycle_counts["vectorized"] == cycle_counts["scalar"]

    def test_fallback_path_does_not_double_count_fpu_stats(self):
        """The exact fallback issues the real FPU; stats must count once."""
        n = 8

        def build(cluster):
            buf = cluster.tcdm.alloc_layout([(n + 1) * 4])[0]
            cluster.stage_in(buf, np.arange(1, n + 2, dtype=np.float32))
            # COPY that reads the word its previous iteration stored: a
            # genuine intra-command RAW hazard, so execute_streams refuses
            # and the exact per-op path runs.
            command = NtxCommand(
                opcode=NtxOpcode.COPY,
                loops=LoopConfig.nest(n),
                agu0=AguConfig(base=buf, strides=(4, 0, 0, 0, 0)),
                agu2=AguConfig(base=buf + 4, strides=(4, 0, 0, 0, 0)),
            )
            return [(0, command)], [buf], (n + 1,)

        from repro.core.vecops import _raw_hazard, command_streams

        probe = Cluster()
        jobs, _, _ = build(probe)
        assert _raw_hazard(command_streams(jobs[0][1]))

        # A RAW hazard inside the FIFO window is timing-sensitive on the
        # real machine (reads can beat earlier stores); the vectorized
        # engine resolves it deterministically in program order, i.e. like
        # the functional executor: buf[0] propagates through the chain.
        functional = Cluster()
        jobs, outs, shape = build(functional)
        functional.ntx[0].execute(jobs[0][1], functional.tcdm)
        expected = functional.stage_out(outs[0], shape)

        cluster = Cluster()
        jobs, outs, shape = build(cluster)
        ClusterSimulator(cluster, engine="vectorized").run(jobs)
        np.testing.assert_array_equal(cluster.stage_out(outs[0], shape), expected)
        assert cluster.ntx[0].fpu.stats.issues == n
        assert cluster.ntx[0].fpu.stats.writebacks == n


class TestEngineSelection:
    def test_unknown_engine_rejected_listing_choices(self):
        """The registry error names every valid engine."""
        with pytest.raises(ValueError, match="vectorized"):
            ClusterSimulator(Cluster(), engine="quantum")
        with pytest.raises(ValueError, match="scalar"):
            ClusterSimulator(Cluster(), engine="quantum")

    def test_simulator_resolves_through_the_registry(self):
        from repro.cluster.engine import available_engines, get_engine

        assert ClusterSimulator(Cluster()).engine == "vectorized"
        for name in available_engines():
            simulator = ClusterSimulator(Cluster(), engine=name)
            assert simulator.engine == name
            assert simulator._engine is get_engine(name)

    def test_timing_signature_starts_with_the_engine_name(self):
        cluster = Cluster()
        command = axpy_commands(4, cluster.tcdm.base, cluster.tcdm.base,
                                cluster.tcdm.base)[0]
        jobs = [(0, command)]
        for engine in ("scalar", "vectorized"):
            signature = ClusterSimulator(cluster, engine=engine).timing_signature(jobs)
            assert signature[0] == engine

    def test_vectorized_honours_max_cycles(self):
        cluster = Cluster()
        rng = np.random.default_rng(1)
        _, _, jobs, _, _ = _conv_setup(cluster, rng, (10, 12))
        with pytest.raises(RuntimeError):
            ClusterSimulator(cluster, engine="vectorized").run(jobs, max_cycles=10)

    def test_vectorized_rejects_bad_ntx_id(self):
        cluster = Cluster()
        command = axpy_commands(4, cluster.tcdm.base, cluster.tcdm.base,
                                cluster.tcdm.base)[0]
        with pytest.raises(ValueError):
            ClusterSimulator(cluster, engine="vectorized").run([(99, command)])


class TestBatchArbitration:
    """arbitrate_batch must be cycle-for-cycle equivalent to arbitrate."""

    def test_equivalence_over_random_cycles(self):
        rng = np.random.default_rng(99)
        tcdm_config = TcdmConfig()
        cluster = Cluster()
        scalar_ic = TcdmInterconnect(cluster.tcdm, num_masters=10)
        batch_ic = TcdmInterconnect(cluster.tcdm, num_masters=10)
        base = cluster.tcdm.base
        for _ in range(200):
            count = int(rng.integers(0, 24))
            masters = rng.integers(0, 10, size=count)
            words = rng.integers(0, tcdm_config.total_words, size=count)
            addresses = base + words * 4
            requests = [
                MemoryRequest(master=int(m), address=int(a))
                for m, a in zip(masters, addresses)
            ]
            result = scalar_ic.arbitrate(requests)
            banks = words % tcdm_config.num_banks
            granted = batch_ic.arbitrate_batch(banks, masters)
            assert int(granted.sum()) == len(result.granted)
            granted_pairs = {
                (int(m), int(b))
                for m, b in zip(masters[granted], banks[granted])
            }
            reference_pairs = {
                (r.master, cluster.tcdm.bank_of(r.address)) for r in result.granted
            }
            assert granted_pairs == reference_pairs
        assert batch_ic.stats == scalar_ic.stats

    def test_empty_cycle(self):
        cluster = Cluster()
        interconnect = TcdmInterconnect(cluster.tcdm, num_masters=4)
        granted = interconnect.arbitrate_batch(np.empty(0, int), np.empty(0, int))
        assert granted.shape == (0,)
        assert interconnect.cycles == 1
        assert interconnect.requests == 0
