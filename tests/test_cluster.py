"""Cluster-level tests: address map, bus routing, offload, DMA, tiling."""

import numpy as np
import pytest

from repro.cluster.addressmap import AddressMap
from repro.cluster.bus import DmaRegisterMap
from repro.cluster.cluster import ClusterConfig
from repro.cluster.offload import NtxDriver
from repro.cluster.tiling import DoubleBufferPlan, TileSchedule, overlap_cycles, plan_tiles
from repro.core.commands import NtxOpcode
from repro.core.registers import RegisterMap
from repro.kernels.blas import axpy_commands, axpy_reference
from repro.mem.dma import DmaTransfer


class TestClusterConfig:
    def test_peak_figures_match_table1(self):
        config = ClusterConfig()
        assert config.peak_flops == pytest.approx(20e9)
        assert config.peak_bandwidth_bytes_per_s == pytest.approx(5e9)
        assert config.machine_balance_flop_per_byte == pytest.approx(4.0)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_ntx=0)


class TestAddressMap:
    def test_regions_are_disjoint(self):
        amap = AddressMap()
        tcdm = amap.tcdm_base
        assert amap.is_tcdm(tcdm) and not amap.is_l2(tcdm) and not amap.is_ntx(tcdm)
        ntx0 = amap.ntx_window(0, 8)
        assert amap.is_ntx(ntx0) and not amap.is_tcdm(ntx0)
        assert amap.is_dma(amap.dma_base)
        assert amap.is_hmc(amap.hmc_base)
        assert amap.is_ntx_broadcast(amap.ntx_broadcast)

    def test_ntx_window_bounds(self):
        amap = AddressMap()
        with pytest.raises(ValueError):
            amap.ntx_window(8, 8)


class TestBusRouting:
    def test_tcdm_and_l2_access(self, cluster):
        cluster.bus.write_u32(cluster.amap.tcdm_base + 8, 0xABCD)
        assert cluster.bus.read_u32(cluster.amap.tcdm_base + 8) == 0xABCD
        cluster.bus.write_u32(cluster.amap.l2_base + 0x100, 42)
        assert cluster.bus.read_u32(cluster.amap.l2_base + 0x100) == 42

    def test_hmc_window(self, cluster):
        cluster.bus.write_u32(cluster.amap.hmc_base + 4, 99)
        assert cluster.bus.read_u32(cluster.amap.hmc_base + 4) == 99

    def test_byte_and_halfword_access(self, cluster):
        base = cluster.amap.tcdm_base
        cluster.bus.write_u32(base, 0x11223344)
        cluster.bus.write_u8(base + 1, 0xEE)
        assert cluster.bus.read_u32(base) == 0x1122EE44
        cluster.bus.write_u16(base + 2, 0xBEEF)
        assert cluster.bus.read_u16(base + 2) == 0xBEEF

    def test_unmapped_access_raises(self, cluster):
        with pytest.raises(IndexError):
            cluster.bus.read_u32(0x7000_0000)

    def test_ntx_register_access_via_bus(self, cluster):
        window = cluster.amap.ntx_window(3, cluster.config.num_ntx)
        cluster.bus.write_u32(window + RegisterMap.loop_count(0), 33)
        assert cluster.bus.read_u32(window + RegisterMap.loop_count(0)) == 33
        # Other co-processors are unaffected.
        other = cluster.amap.ntx_window(0, cluster.config.num_ntx)
        assert cluster.bus.read_u32(other + RegisterMap.loop_count(0)) == 1

    def test_broadcast_write_reaches_every_ntx(self, cluster):
        cluster.bus.write_u32(
            cluster.amap.ntx_broadcast + RegisterMap.loop_count(1), 17
        )
        for regs in cluster.ntx_regs:
            assert regs.read(RegisterMap.loop_count(1)) == 17

    def test_dma_registers_trigger_transfer(self, cluster, rng):
        data = rng.standard_normal(32).astype(np.float32)
        cluster.stage_in(cluster.amap.hmc_base, data)
        dma = cluster.amap.dma_base
        cluster.bus.write_u32(dma + DmaRegisterMap.SRC, cluster.amap.hmc_base)
        cluster.bus.write_u32(dma + DmaRegisterMap.DST, cluster.amap.tcdm_base)
        cluster.bus.write_u32(dma + DmaRegisterMap.ROW_BYTES, data.nbytes)
        cluster.bus.write_u32(dma + DmaRegisterMap.ROWS, 1)
        cluster.bus.write_u32(dma + DmaRegisterMap.START, 1)
        np.testing.assert_array_equal(
            cluster.stage_out(cluster.amap.tcdm_base, (32,)), data
        )
        assert cluster.bus.read_u32(dma + DmaRegisterMap.STATUS) == 0


class TestOffload:
    def test_offload_executes_on_selected_ntx(self, cluster, rng):
        x = rng.standard_normal(32).astype(np.float32)
        y = rng.standard_normal(32).astype(np.float32)
        a_addr, x_addr, y_addr = cluster.tcdm.alloc_layout([4, x.nbytes, y.nbytes])
        cluster.stage_in(a_addr, np.array([2.0], np.float32))
        cluster.stage_in(x_addr, x)
        cluster.stage_in(y_addr, y)
        command = axpy_commands(32, a_addr, x_addr, y_addr)[0]
        cluster.offload(command, ntx_id=5)
        np.testing.assert_allclose(
            cluster.stage_out(y_addr, (32,)), axpy_reference(2.0, x, y), rtol=1e-6
        )
        assert cluster.ntx[5].stats.commands == 1
        assert cluster.ntx[0].stats.commands == 0

    def test_offload_invalid_ntx(self, cluster):
        command = axpy_commands(4, cluster.tcdm.base, cluster.tcdm.base, cluster.tcdm.base)[0]
        with pytest.raises(ValueError):
            cluster.offload(command, ntx_id=99)

    def test_round_robin_distribution(self, cluster, rng):
        commands = []
        for i in range(cluster.config.num_ntx):
            base = cluster.tcdm.base + i * 256
            commands.append(axpy_commands(8, base, base + 4, base + 64)[0])
        cluster.offload_round_robin(commands)
        assert all(ntx.stats.commands == 1 for ntx in cluster.ntx)

    def test_driver_dma_and_stats(self, cluster, rng):
        driver = NtxDriver(cluster)
        data = rng.standard_normal(64).astype(np.float32)
        cluster.stage_in(cluster.amap.hmc_base + 0x1000, data)
        driver.copy_in(cluster.amap.hmc_base + 0x1000, cluster.tcdm.base, data.nbytes)
        np.testing.assert_array_equal(cluster.stage_out(cluster.tcdm.base, (64,)), data)
        assert driver.stats.dma_transfers == 1
        assert driver.stats.dma_bytes == data.nbytes
        assert cluster.axi.bytes_transferred == data.nbytes

    def test_driver_broadcast_scalar(self, cluster):
        driver = NtxDriver(cluster)
        driver.broadcast_scalar(3.5)
        for regs in cluster.ntx_regs:
            assert regs.read(RegisterMap.SCALAR) == 0x40600000  # 3.5f

    def test_run_parallel_tracks_max_cycles(self, cluster):
        driver = NtxDriver(cluster)
        base = cluster.tcdm.base
        commands = [axpy_commands(16, base, base + 4, base + 128)[0] for _ in range(4)]
        driver.run_parallel(commands)
        assert driver.stats.commands_issued == 4
        single = cluster.config.ntx.ideal_cycles(commands[0])
        assert driver.stats.compute_ideal_cycles == single  # spread over 4 NTX


class TestTiling:
    def test_plan_tiles_respects_budget(self):
        tiles = plan_tiles(
            total_elements=100_000,
            bytes_per_element_in=8,
            bytes_per_element_out=4,
            tcdm_bytes=64 * 1024,
        )
        assert sum(tiles) == 100_000
        assert max(tiles) * 12 <= 32 * 1024

    def test_plan_tiles_single_tile_when_it_fits(self):
        assert plan_tiles(10, 8, 4, 64 * 1024) == [10]

    def test_plan_tiles_rejects_oversized_element(self):
        with pytest.raises(MemoryError):
            plan_tiles(10, 64 * 1024, 4, 64 * 1024)

    def test_overlap_cycles_hides_shorter_phase(self):
        compute = [100.0] * 4
        dma = [60.0] * 4
        total = overlap_cycles(compute, dma)
        assert total == pytest.approx(sum(compute) + 60.0)

    def test_overlap_cycles_memory_bound(self):
        compute = [10.0] * 3
        dma = [50.0] * 3
        assert overlap_cycles(compute, dma) == pytest.approx(150.0 + 50.0)

    def test_driver_run_tiled_executes_and_times(self, cluster, rng):
        driver = NtxDriver(cluster)
        n = 64
        hmc = cluster.amap.hmc_base
        x = rng.standard_normal(n).astype(np.float32)
        y = rng.standard_normal(n).astype(np.float32)
        cluster.stage_in(hmc + 0x0, x)
        cluster.stage_in(hmc + 0x1000, y)
        a_addr, x_addr, y_addr = cluster.tcdm.alloc_layout([4, n * 4, n * 4])
        cluster.stage_in(a_addr, np.array([1.0], np.float32))
        tile = TileSchedule(
            transfers_in=[
                DmaTransfer(src=hmc + 0x0, dst=x_addr, row_bytes=n * 4),
                DmaTransfer(src=hmc + 0x1000, dst=y_addr, row_bytes=n * 4),
            ],
            commands=axpy_commands(n, a_addr, x_addr, y_addr),
            transfers_out=[DmaTransfer(src=y_addr, dst=hmc + 0x2000, row_bytes=n * 4)],
        )
        plan = DoubleBufferPlan(tiles=[tile])
        timing = driver.run_tiled(plan)
        np.testing.assert_allclose(
            cluster.stage_out(hmc + 0x2000, (n,)), axpy_reference(1.0, x, y), rtol=1e-6
        )
        assert timing["overlapped_cycles"] <= timing["serial_cycles"]
        assert plan.total_flops == 2 * n
        assert plan.operational_intensity == pytest.approx(2 * n / (3 * 4 * n))


class TestRiscvIntegration:
    def test_control_program_drives_dma_and_reads_tcdm(self, cluster):
        """A RISC-V program programs the DMA to copy HMC data into the TCDM."""
        hmc = cluster.amap.hmc_base
        cluster.hmc.memory.write_u32(hmc + 0x40, 1234)
        source = f"""
            li t0, {cluster.amap.dma_base}
            li t1, {hmc + 0x40}
            sw t1, {DmaRegisterMap.SRC}(t0)
            li t1, {cluster.amap.tcdm_base}
            sw t1, {DmaRegisterMap.DST}(t0)
            li t1, 4
            sw t1, {DmaRegisterMap.ROW_BYTES}(t0)
            li t1, 1
            sw t1, {DmaRegisterMap.ROWS}(t0)
            sw t1, {DmaRegisterMap.START}(t0)
            li t2, {cluster.amap.tcdm_base}
            lw a0, 0(t2)
            ecall
        """
        exit_code = cluster.run_program(source)
        assert exit_code == 1234

    def test_control_program_offloads_ntx_command(self, cluster):
        """A RISC-V program fills a TCDM buffer through NTX's FILL command."""
        tcdm = cluster.amap.tcdm_base
        ntx0 = cluster.amap.ntx_window(0, cluster.config.num_ntx)
        fill_opcode = RegisterMap.opcode_to_value(NtxOpcode.FILL)
        source = f"""
            li t0, {ntx0}
            # loop 0 runs 8 times, writing the scalar to consecutive words
            li t1, 8
            sw t1, {RegisterMap.loop_count(0)}(t0)
            li t1, 0x40A00000        # 5.0f
            sw t1, {RegisterMap.SCALAR}(t0)
            li t1, {tcdm + 0x200}
            sw t1, {RegisterMap.agu_base(2)}(t0)
            li t1, 4
            sw t1, {RegisterMap.agu_stride(2, 0)}(t0)
            li t1, {fill_opcode}
            sw t1, {RegisterMap.CMD}(t0)
            # read back the last element the co-processor wrote
            li t2, {tcdm + 0x200 + 7 * 4}
            lw a0, 0(t2)
            ecall
        """
        exit_code = cluster.run_program(source)
        assert exit_code == 0x40A00000
        np.testing.assert_array_equal(
            cluster.stage_out(tcdm + 0x200, (8,)),
            np.full(8, 5.0, dtype=np.float32),
        )
