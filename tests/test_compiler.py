"""The declarative scenario compiler: neighborhoods, coefficient rings,
validation error paths, compiled goldens, the differential pin against the
hand-written stencil family, and pipeline chaining."""

import numpy as np
import pytest

from repro.kernels.conv import conv2d_f64, conv3d_reference
from repro.scenarios import ScenarioSpec, get_scenario, run_scenario
from repro.scenarios.compiler import (
    COEFFICIENT_LATTICE,
    PipelineSpec,
    ReduceSpec,
    StencilSpec,
    bilateral_coefficients,
    distance_classes,
    gaussian_coefficients,
    laplacian_coefficients,
    neighborhood_offsets,
)


class TestNeighborhoods:
    def test_moore_radius1_3d_is_the_27_point_cube(self):
        offsets = neighborhood_offsets("moore", 1, 3)
        assert len(offsets) == 27
        # L1 distance grades the cube into center/faces/edges/corners.
        by_distance = {}
        for _, distance in offsets:
            by_distance[distance] = by_distance.get(distance, 0) + 1
        assert by_distance == {0: 1, 1: 6, 2: 12, 3: 8}

    def test_von_neumann_radius1_3d_is_the_7_point_diamond(self):
        assert len(neighborhood_offsets("von_neumann", 1, 3)) == 7

    def test_von_neumann_radius2_2d_is_the_13_point_diamond(self):
        assert len(neighborhood_offsets("von_neumann", 2, 2)) == 13

    def test_distance_class_counts(self):
        assert distance_classes("von_neumann", 2, 3) == 3
        assert distance_classes("moore", 2, 3) == 7
        assert distance_classes("moore", 1, 2) == 3

    def test_unknown_neighborhood_names_the_field(self):
        with pytest.raises(ValueError, match="^neighborhood:"):
            neighborhood_offsets("hexagonal", 1, 2)


class TestCoefficients:
    def test_laplacian_rings_sum_to_zero(self):
        for neighborhood, radius, dims in (
            ("moore", 1, 3),
            ("von_neumann", 2, 2),
        ):
            coeffs = laplacian_coefficients(neighborhood, radius, dims)
            total = 0.0
            for _, distance in neighborhood_offsets(neighborhood, radius, dims):
                total += coeffs[distance]
            assert total == 0.0

    def test_gaussian_rings_are_on_the_lattice_and_decreasing(self):
        coeffs = gaussian_coefficients(radius=2, dims=2)
        assert len(coeffs) == distance_classes("moore", 2, 2)
        for value in coeffs:
            assert value * COEFFICIENT_LATTICE == round(value * COEFFICIENT_LATTICE)
            assert value > 0.0
        assert list(coeffs) == sorted(coeffs, reverse=True)

    def test_bilateral_attenuates_far_rings_harder_than_gaussian(self):
        gauss = gaussian_coefficients(radius=2, dims=2)
        bilateral = bilateral_coefficients(radius=2, dims=2, range_weight=0.25)
        # Normalized ring profiles: the bilateral's relative tail weight is
        # smaller (the fixed range kernel multiplies the spatial Gaussian).
        assert bilateral[-1] / bilateral[0] < gauss[-1] / gauss[0]


class TestStencilSpecValidation:
    """Satellite: every documented error path names the offending field."""

    def test_unknown_neighborhood(self):
        with pytest.raises(ValueError, match="^neighborhood: unknown"):
            StencilSpec(neighborhood="hexagonal")

    def test_radius_zero(self):
        with pytest.raises(ValueError, match="^radius: .*>= 1"):
            StencilSpec(radius=0)

    def test_coefficient_count_mismatch(self):
        # Moore r=1 2D has 3 distance classes; 2 coefficients must fail.
        with pytest.raises(ValueError, match=r"^coefficients: 2 .*3 .*distance"):
            StencilSpec(neighborhood="moore", radius=1, coefficients=(1.0, -1.0))

    def test_coefficients_neither_auto_nor_array(self):
        with pytest.raises(ValueError, match="^coefficients: expected 'auto'"):
            StencilSpec(coefficients="gaussian")

    def test_bad_grid_shapes(self):
        with pytest.raises(ValueError, match="^grid_shape:"):
            StencilSpec(grid_shape=(16,))  # 1D
        with pytest.raises(ValueError, match="^grid_shape:"):
            StencilSpec(grid_shape=(8, -4))
        with pytest.raises(ValueError, match="^grid_shape: .*too small"):
            StencilSpec(radius=2, grid_shape=(4, 4), boundary="valid")

    def test_unknown_boundary(self):
        with pytest.raises(ValueError, match="^boundary: unknown"):
            StencilSpec(boundary="mirror")

    def test_errors_surface_at_scenario_spec_construction(self):
        """The family's validate hook fires before any simulation."""
        with pytest.raises(ValueError, match="radius"):
            ScenarioSpec(name="bad", family="cstencil", params={"radius": 0})
        with pytest.raises(ValueError, match="neighborhood"):
            ScenarioSpec(
                name="bad", family="cstencil", params={"neighborhood": "hex"}
            )

    def test_coefficients_quantize_to_the_lattice(self):
        spec = StencilSpec(
            neighborhood="von_neumann", radius=1, coefficients=(0.1, 0.2)
        )
        for value in spec.resolved_coefficients():
            assert value * COEFFICIENT_LATTICE == round(value * COEFFICIENT_LATTICE)


class TestPipelineValidation:
    """Satellite: pipeline error paths name the stage index and field."""

    def _stage(self, **overrides):
        stage = {
            "kind": "stencil",
            "neighborhood": "von_neumann",
            "radius": 1,
            "coefficients": "auto",
            "boundary": "valid",
        }
        stage.update(overrides)
        return stage

    def test_stage_grid_shape_mismatch(self):
        # Stage 0 shrinks (10, 10) to (8, 8); a stage declaring (10, 10) fails.
        with pytest.raises(ValueError, match=r"^stages\[1\]\.grid_shape:"):
            PipelineSpec.from_params(
                {
                    "grid_shape": (10, 10),
                    "stages": (
                        self._stage(),
                        self._stage(grid_shape=(10, 10)),
                    ),
                }
            )

    def test_reduce_must_be_last(self):
        with pytest.raises(ValueError, match=r"^stages\[0\]\.kind: .*last"):
            PipelineSpec(
                grid_shape=(8, 8),
                stages=(ReduceSpec("sum"), StencilSpec(grid_shape=(8, 8))),
            )

    def test_padding_only_on_the_first_stage(self):
        with pytest.raises(ValueError, match=r"^stages\[1\]\.boundary:"):
            PipelineSpec.from_params(
                {
                    "grid_shape": (10, 10),
                    "stages": (
                        self._stage(),
                        self._stage(boundary="edge"),
                    ),
                }
            )

    def test_unknown_stage_kind_and_reduce_op(self):
        with pytest.raises(ValueError, match=r"^stages\[0\]\.kind: unknown"):
            PipelineSpec.from_params(
                {"grid_shape": (8, 8), "stages": ({"kind": "fft"},)}
            )
        with pytest.raises(ValueError, match=r"^stages\[0\]\.op: unknown"):
            PipelineSpec.from_params(
                {"grid_shape": (8, 8), "stages": ({"kind": "reduce", "op": "mean"},)}
            )

    def test_empty_pipeline(self):
        with pytest.raises(ValueError, match="^stages:"):
            PipelineSpec.from_params({"grid_shape": (8, 8), "stages": ()})

    def test_stage_errors_carry_the_stencil_field_name(self):
        with pytest.raises(ValueError, match=r"^stages\[0\]\.radius:"):
            PipelineSpec.from_params(
                {"grid_shape": (8, 8), "stages": (self._stage(radius=0),)}
            )


class TestCompiledGoldens:
    def test_dense_27_point_laplacian_kernel(self):
        spec = StencilSpec(
            neighborhood="moore", radius=1, grid_shape=(4, 4, 4)
        )
        kernel = spec.dense_kernel()
        assert kernel.shape == (3, 3, 3)
        assert kernel[1, 1, 1] == -26.0  # center balances the 26 neighbors
        assert kernel[0, 1, 1] == 1.0  # face (L1 = 1)
        assert kernel[0, 0, 1] == 1.0  # edge (L1 = 2)
        assert kernel[0, 0, 0] == 1.0  # corner (L1 = 3)
        assert float(kernel.sum()) == 0.0

    def test_auto_von_neumann_radius1_2d_is_the_5_point_laplacian(self):
        spec = StencilSpec(
            neighborhood="von_neumann", radius=1, grid_shape=(6, 6)
        )
        expected = np.array(
            [[0, 1, 0], [1, -4, 1], [0, 1, 0]], dtype=np.float32
        )
        assert np.array_equal(spec.dense_kernel(), expected)

    def test_2d_reference_matches_direct_convolution(self):
        rng = np.random.default_rng(5)
        grid = (rng.integers(-32, 32, size=(8, 9)) / 16.0).astype(np.float32)
        spec = StencilSpec(
            neighborhood="moore", radius=1, grid_shape=(8, 9), boundary="valid"
        )
        expected = conv2d_f64(grid, spec.dense_kernel()).astype(np.float32)
        assert np.array_equal(spec.reference(grid), expected)

    def test_3d_reference_matches_kernel_library(self):
        rng = np.random.default_rng(6)
        grid = (rng.integers(-32, 32, size=(5, 6, 6)) / 16.0).astype(np.float32)
        spec = StencilSpec(
            neighborhood="von_neumann",
            radius=1,
            grid_shape=(5, 6, 6),
            boundary="valid",
        )
        expected = conv3d_reference(grid, spec.dense_kernel())
        assert np.array_equal(spec.reference(grid), expected)

    def test_padded_boundary_keeps_the_grid_shape(self):
        for boundary in ("constant", "edge", "wrap"):
            spec = StencilSpec(grid_shape=(6, 7), boundary=boundary)
            assert spec.output_shape == (6, 7)
            assert spec.padded_shape == (8, 9)

    def test_pipeline_reference_composes_stage_goldens(self):
        pipe = PipelineSpec.from_params(
            {
                "grid_shape": (8, 8),
                "stages": (
                    {
                        "kind": "stencil",
                        "neighborhood": "moore",
                        "radius": 1,
                        "coefficients": gaussian_coefficients(radius=1, dims=2),
                        "boundary": "edge",
                    },
                    {
                        "kind": "stencil",
                        "neighborhood": "von_neumann",
                        "radius": 1,
                        "coefficients": "auto",
                        "boundary": "valid",
                    },
                    {"kind": "reduce", "op": "sum"},
                ),
            }
        )
        assert pipe.stage_shapes == ((8, 8), (8, 8), (6, 6), (1,))
        rng = np.random.default_rng(7)
        grid = (rng.integers(-32, 32, size=(8, 8)) / 16.0).astype(np.float32)
        blurred = pipe.stages[0].reference(grid)
        sharpened = pipe.stages[1].reference(blurred)
        expected = np.array(
            [sharpened.ravel().astype(np.float64).sum()], dtype=np.float32
        )
        assert np.array_equal(pipe.reference(grid), expected)


class TestDifferentialAgainstHandWritten:
    """Satellite: the compiled vN r=1 Laplace pins to the proven builder.

    The hand-written ``stencil`` family computes the 5-point Laplacian as
    two separable (1, -2, 1) passes with an intermediate binary32 rounding;
    the compiler emits one dense 3x3 convolution.  On lattice-valued fields
    both paths are exact, so tile-for-tile the staged inputs, the goldens
    AND the simulated HMC output regions must be *byte*-identical.  (Whole
    HMC images differ by construction: the families stage different
    constants — 3 taps vs a 9-word dense kernel — so the layouts shift.)
    """

    def test_compiled_laplace_matches_stencil_family_byte_for_byte(self):
        compiled = run_scenario("cstencil-laplace2d-vn", num_tiles=3)
        hand_written = run_scenario("stencil-laplace2d", num_tiles=3)
        assert len(compiled.workload.references) == 3
        assert len(hand_written.workload.references) == 3
        for (_, golden_c), (_, golden_h) in zip(
            compiled.workload.references, hand_written.workload.references
        ):
            assert golden_c.tobytes() == golden_h.tobytes()
        for produced_c, produced_h in zip(
            compiled.output_arrays(), hand_written.output_arrays()
        ):
            assert produced_c.tobytes() == produced_h.tobytes()


class TestCompiledScenarioRoundTrips:
    def test_registered_compiled_specs_survive_json(self):
        for name in (
            "cstencil-laplace27",
            "cstencil-heat3d",
            "cstencil-gauss-blur",
            "cstencil-bilateral",
            "pipeline-blur-stencil-reduce",
        ):
            spec = get_scenario(name)
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_pipeline_run_verifies_and_reduces_to_one_word(self):
        outcome = run_scenario(
            "pipeline-blur-stencil-reduce", num_tiles=2, num_vaults=1,
            clusters_per_vault=1,
        )
        assert outcome.verified
        for produced in outcome.output_arrays():
            assert produced.shape == (1,)
