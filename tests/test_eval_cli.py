"""Tests for the ``python -m repro.eval`` command-line entry point."""

import pytest

from repro.eval.__main__ import EXPERIMENTS, main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_single_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "figures of merit" in out
    assert "peak_gflops" in out


def test_fast_subset_of_experiments(capsys):
    assert main(["fig5", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "roofline" in out and "area efficiency" in out


def test_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["does-not-exist"])
