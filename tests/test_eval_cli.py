"""Tests for the ``python -m repro.eval`` command-line entry point."""

import pytest

from repro.eval.__main__ import EXPERIMENTS, main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_single_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "figures of merit" in out
    assert "peak_gflops" in out


def test_fast_subset_of_experiments(capsys):
    assert main(["fig5", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "roofline" in out and "area efficiency" in out


def test_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["does-not-exist"])


def test_scenario_list(capsys):
    from repro.scenarios import registered_scenarios

    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in registered_scenarios():
        assert name in out


def test_scenario_run(capsys):
    assert main(["scenario", "run", "matmul-tiled", "--tiles", "2"]) == 0
    out = capsys.readouterr().out
    assert "matmul-tiled" in out
    assert "verified against the golden model: ok" in out


def test_scenario_run_engine_override(capsys):
    assert main(
        ["scenario", "run", "conv-tiled", "--tiles", "1", "--engine", "scalar"]
    ) == 0
    out = capsys.readouterr().out
    assert "engine scalar" in out


def test_scenario_run_unknown_name_fails_cleanly(capsys):
    assert main(["scenario", "run", "does-not-exist"]) == 2
    err = capsys.readouterr().err
    assert "registered scenarios" in err


def test_epilog_is_generated_from_the_registries():
    """Satellite: the CLI help can never drift from the registries."""
    from repro.campaign import registered_campaigns
    from repro.cluster.engine import available_engines
    from repro.eval.__main__ import _epilog
    from repro.scenarios import registered_scenarios

    epilog = _epilog()
    for name in EXPERIMENTS:
        assert name in epilog
    for name in available_engines():
        assert name in epilog
    for name in registered_scenarios():
        assert name in epilog
    for name in registered_campaigns():
        assert name in epilog


def test_campaign_list(capsys):
    from repro.campaign import registered_campaigns

    assert main(["campaign", "list"]) == 0
    out = capsys.readouterr().out
    for name in registered_campaigns():
        assert name in out


def test_campaign_run_report_and_resume(tmp_path, capsys):
    store = str(tmp_path / "dnn.jsonl")
    assert main(
        ["campaign", "run", "dnn-scaling", "--quick", "--store", store]
    ) == 0
    out = capsys.readouterr().out
    assert "4 points, 0 resumed from the store, 4 executed" in out
    assert "plateau" in out or "points analysed" in out

    # Acceptance: rerunning the same command skips every completed point.
    assert main(
        ["campaign", "run", "dnn-scaling", "--quick", "--store", store]
    ) == 0
    out = capsys.readouterr().out
    assert "4 resumed from the store, 0 executed" in out

    assert main(
        ["campaign", "report", "dnn-scaling", "--quick", "--store", store]
    ) == 0
    out = capsys.readouterr().out
    assert "points analysed" in out


def test_campaign_report_without_store_fails_cleanly(tmp_path, capsys):
    store = str(tmp_path / "missing.jsonl")
    assert main(
        ["campaign", "report", "dnn-scaling", "--quick", "--store", store]
    ) == 1
    out = capsys.readouterr().out
    assert "run the campaign" in out


def test_campaign_unknown_name_fails_cleanly(capsys):
    assert main(["campaign", "run", "does-not-exist"]) == 2
    err = capsys.readouterr().err
    assert "registered campaigns" in err
