"""Tests for the ``python -m repro.eval`` command-line entry point."""

import pytest

from repro.eval.__main__ import EXPERIMENTS, main


def test_list_option(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_single_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "figures of merit" in out
    assert "peak_gflops" in out


def test_fast_subset_of_experiments(capsys):
    assert main(["fig5", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "roofline" in out and "area efficiency" in out


def test_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["does-not-exist"])


def test_scenario_list(capsys):
    from repro.scenarios import registered_scenarios

    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in registered_scenarios():
        assert name in out


def test_scenario_run(capsys):
    assert main(["scenario", "run", "matmul-tiled", "--tiles", "2"]) == 0
    out = capsys.readouterr().out
    assert "matmul-tiled" in out
    assert "verified against the golden model: ok" in out


def test_scenario_run_engine_override(capsys):
    assert main(
        ["scenario", "run", "conv-tiled", "--tiles", "1", "--engine", "scalar"]
    ) == 0
    out = capsys.readouterr().out
    assert "engine scalar" in out


def test_scenario_run_unknown_name_fails_cleanly(capsys):
    assert main(["scenario", "run", "does-not-exist"]) == 2
    err = capsys.readouterr().err
    assert "registered scenarios" in err


def test_epilog_is_generated_from_the_registries():
    """Satellite: the CLI help can never drift from the registries."""
    from repro.campaign import registered_campaigns
    from repro.cluster.engine import available_engines
    from repro.eval.__main__ import _epilog
    from repro.scenarios import registered_scenarios

    epilog = _epilog()
    for name in EXPERIMENTS:
        assert name in epilog
    for name in available_engines():
        assert name in epilog
    for name in registered_scenarios():
        assert name in epilog
    for name in registered_campaigns():
        assert name in epilog


def test_campaign_list(capsys):
    from repro.campaign import registered_campaigns

    assert main(["campaign", "list"]) == 0
    out = capsys.readouterr().out
    for name in registered_campaigns():
        assert name in out


def test_campaign_run_report_and_resume(tmp_path, capsys):
    store = str(tmp_path / "dnn.jsonl")
    assert main(
        ["campaign", "run", "dnn-scaling", "--quick", "--store", store]
    ) == 0
    out = capsys.readouterr().out
    assert "4 points, 0 resumed from the store, 4 executed" in out
    assert "plateau" in out or "points analysed" in out

    # Acceptance: rerunning the same command skips every completed point.
    assert main(
        ["campaign", "run", "dnn-scaling", "--quick", "--store", store]
    ) == 0
    out = capsys.readouterr().out
    assert "4 resumed from the store, 0 executed" in out

    assert main(
        ["campaign", "report", "dnn-scaling", "--quick", "--store", store]
    ) == 0
    out = capsys.readouterr().out
    assert "points analysed" in out


def test_campaign_report_without_store_fails_cleanly(tmp_path, capsys):
    store = str(tmp_path / "missing.jsonl")
    assert main(
        ["campaign", "report", "dnn-scaling", "--quick", "--store", store]
    ) == 1
    out = capsys.readouterr().out
    assert "run the campaign" in out


def test_campaign_unknown_name_fails_cleanly(capsys):
    assert main(["campaign", "run", "does-not-exist"]) == 2
    err = capsys.readouterr().err
    assert "registered campaigns" in err


def test_campaign_run_with_cache_dir_serves_fresh_stores(tmp_path, capsys):
    """Acceptance: a warm global cache eliminates re-simulation even
    into a brand-new store, and the summary says so explicitly."""
    cache = str(tmp_path / "cache")
    cold = ["campaign", "run", "dnn-scaling", "--quick", "--cache-dir", cache]
    assert main(cold + ["--store", str(tmp_path / "a.jsonl")]) == 0
    out = capsys.readouterr().out
    assert "0 from the global cache, 4 executed" in out

    assert main(cold + ["--store", str(tmp_path / "b.jsonl")]) == 0
    out = capsys.readouterr().out
    assert "4 points, 0 resumed from the store, 4 from the global cache, 0 executed" in out


def test_campaign_summary_without_cache_is_unchanged(tmp_path, capsys):
    """The no-cache summary line stays byte-compatible (no cache clause)."""
    store = str(tmp_path / "dnn.jsonl")
    assert main(["campaign", "run", "dnn-scaling", "--quick", "--store", store]) == 0
    out = capsys.readouterr().out
    assert "4 points, 0 resumed from the store, 4 executed" in out
    assert "global cache" not in out


def test_campaign_sharded_run_and_merge(tmp_path, capsys):
    shards = []
    for index in range(2):
        store = str(tmp_path / f"shard{index}.jsonl")
        shards.append(store)
        assert main(
            ["campaign", "run", "dnn-scaling", "--quick",
             "--shard", f"{index}/2", "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert f"[shard {index}/2]: 2 points" in out

    merged = str(tmp_path / "merged.jsonl")
    assert main(["campaign", "merge", "--output", merged] + shards) == 0
    out = capsys.readouterr().out
    assert f"merged 2 store(s) -> {merged} (4 points)" in out
    first = open(merged, "rb").read()

    # Merging in the opposite order is byte-identical.
    assert main(["campaign", "merge", "--output", merged] + shards[::-1]) == 0
    capsys.readouterr()
    assert open(merged, "rb").read() == first

    # The merged store resumes a full run completely.
    assert main(
        ["campaign", "run", "dnn-scaling", "--quick", "--store", merged]
    ) == 0
    out = capsys.readouterr().out
    assert "4 resumed from the store, 0 executed" in out


def test_campaign_merge_missing_input_fails_cleanly(tmp_path, capsys):
    assert main(
        ["campaign", "merge", "--output", str(tmp_path / "m.jsonl"),
         str(tmp_path / "ghost.jsonl")]
    ) == 2
    err = capsys.readouterr().err
    assert "does not exist" in err


def test_campaign_invalid_shard_selector_fails_cleanly(tmp_path, capsys):
    assert main(
        ["campaign", "run", "dnn-scaling", "--quick", "--shard", "4/2",
         "--store", str(tmp_path / "s.jsonl")]
    ) == 2
    err = capsys.readouterr().err
    assert "shard index" in err
