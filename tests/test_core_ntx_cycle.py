"""Cycle-level NTX model: correctness and timing behaviour."""

import numpy as np
import pytest

from repro.core.commands import AguConfig, LoopConfig, NtxCommand, NtxOpcode
from repro.core.golden import GoldenMemory, golden_execute
from repro.core.ntx import Ntx, NtxConfig


class _AlwaysGrantingMemory(GoldenMemory):
    """Runs the cycle interface standalone by granting every request."""


def _run_cycle_level(command, memory, config=None):
    ntx = Ntx(config)
    ntx.start(command)
    cycles = 0
    while ntx.busy:
        requests = ntx.cycle_requests()
        granted = {address for address, _ in requests}
        ntx.cycle_commit(granted, memory)
        cycles += 1
        assert cycles < 100_000, "cycle-level execution did not terminate"
    return ntx, cycles


def _dot_command(n, a_base=0x0, b_base=0x400, out=0x800):
    return NtxCommand(
        opcode=NtxOpcode.MAC,
        loops=LoopConfig.nest(n),
        agu0=AguConfig(base=a_base, strides=(4, 0, 0, 0, 0)),
        agu1=AguConfig(base=b_base, strides=(4, 0, 0, 0, 0)),
        agu2=AguConfig.stationary(out),
        init_level=1,
        store_level=1,
    )


class TestCycleLevelCorrectness:
    def test_dot_product_matches_golden(self, rng):
        n = 37
        values = {}
        for i in range(n):
            values[0x0 + 4 * i] = float(np.float32(rng.standard_normal()))
            values[0x400 + 4 * i] = float(np.float32(rng.standard_normal()))
        command = _dot_command(n)

        golden = GoldenMemory(dict(values))
        golden_execute(command, golden)

        memory = GoldenMemory(dict(values))
        _run_cycle_level(command, memory)
        assert memory.read_f32(0x800) == pytest.approx(golden.read_f32(0x800), rel=1e-6)

    def test_elementwise_copy_with_store_to_load_forwarding(self):
        # In-place prefix-style pattern: read an address that an earlier
        # iteration's store may still hold in the write-back FIFO.
        n = 16
        values = {0x0 + 4 * i: float(i) for i in range(n)}
        command = NtxCommand(
            opcode=NtxOpcode.COPY,
            loops=LoopConfig.nest(n),
            agu0=AguConfig(base=0x0, strides=(4, 0, 0, 0, 0)),
            agu2=AguConfig(base=0x100, strides=(4, 0, 0, 0, 0)),
            init_level=0,
            store_level=0,
        )
        memory = GoldenMemory(dict(values))
        _run_cycle_level(command, memory)
        for i in range(n):
            assert memory.read_f32(0x100 + 4 * i) == float(i)


class TestCycleLevelTiming:
    def test_conflict_free_throughput_near_one_per_cycle(self):
        n = 512
        command = _dot_command(n)
        memory = GoldenMemory()
        ntx, cycles = _run_cycle_level(command, memory)
        overhead = ntx.config.command_setup_cycles + ntx.config.writeback_drain_cycles
        assert cycles <= n + overhead + 5
        assert ntx.stats.iterations == n

    def test_ideal_cycles_estimate(self):
        config = NtxConfig()
        command = _dot_command(100)
        assert config.ideal_cycles(command) == 100 + config.command_setup_cycles + (
            config.writeback_drain_cycles
        )

    def test_stall_when_requests_denied(self):
        command = _dot_command(8)
        memory = GoldenMemory()
        ntx = Ntx()
        ntx.start(command)
        # Deny everything for a few cycles after setup: no progress, stalls count.
        for _ in range(ntx.config.command_setup_cycles):
            ntx.cycle_commit(set(), memory)
        stalls_before = ntx.stats.stall_cycles
        ntx.cycle_requests()
        ntx.cycle_commit(set(), memory)
        assert ntx.stats.stall_cycles == stalls_before + 1

    def test_busy_until_writeback_drains(self):
        command = _dot_command(4)
        memory = GoldenMemory()
        ntx = Ntx()
        ntx.start(command)
        # Grant reads but never the store: the NTX must stay busy.
        for _ in range(200):
            requests = ntx.cycle_requests()
            granted = {addr for addr, is_write in requests if not is_write}
            ntx.cycle_commit(granted, memory)
        assert ntx.busy
        # Now allow the write and let it finish.
        for _ in range(200):
            if not ntx.busy:
                break
            requests = ntx.cycle_requests()
            ntx.cycle_commit({addr for addr, _ in requests}, memory)
        assert not ntx.busy

    def test_start_while_busy_rejected(self):
        command = _dot_command(4)
        ntx = Ntx()
        ntx.start(command)
        with pytest.raises(RuntimeError):
            ntx.start(command)

    def test_utilization_statistic(self):
        command = _dot_command(64)
        memory = GoldenMemory()
        ntx, _cycles = _run_cycle_level(command, memory)
        assert 0.9 <= ntx.stats.utilization <= 1.0
