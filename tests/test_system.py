"""The multi-cluster scale-out subsystem: scheduler edge cases, the
end-to-end system run on a shared HMC, the bandwidth contention model,
tile-timing memoization and the parallel dispatcher."""

import math
import time

import numpy as np
import pytest

from repro.system import (
    SystemConfig,
    SystemSimulator,
    WorkQueueScheduler,
    conv_tiled_workload,
    shard_round_robin,
)


def _run_system(
    config, num_tiles, image_shape=(12, 14), parallel=None, memoize=True, seed=2019
):
    """One end-to-end run; returns (simulator, workload, result, outputs)."""
    simulator = SystemSimulator(config, parallel=parallel, memoize=memoize)
    workload = conv_tiled_workload(
        simulator.hmc, num_tiles=num_tiles, image_shape=image_shape, seed=seed
    )
    result = simulator.run(workload.tiles)
    outputs = [
        simulator.hmc.memory.load_array(address, expected.shape)
        for address, expected in workload.references
    ]
    return simulator, workload, result, outputs


class TestWorkQueueScheduler:
    def test_zero_clusters_rejected(self):
        with pytest.raises(ValueError):
            WorkQueueScheduler().assign([1.0, 2.0], 0)
        with pytest.raises(ValueError):
            shard_round_robin(4, 0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            WorkQueueScheduler().assign([1.0, -2.0], 2)

    def test_non_finite_cost_rejected(self):
        """A NaN cost would silently corrupt the availability heap."""
        with pytest.raises(ValueError):
            WorkQueueScheduler().assign([1.0, math.nan], 2)
        with pytest.raises(ValueError):
            WorkQueueScheduler().assign([math.inf], 2)

    def test_no_tiles(self):
        plan = WorkQueueScheduler().assign([], 4)
        assert plan.num_assigned == 0
        assert plan.idle_clusters == 4

    def test_one_tile_many_clusters(self):
        plan = WorkQueueScheduler().assign([5.0], 8)
        assert plan.num_assigned == 1
        assert plan.busiest == 1
        assert plan.idle_clusters == 7
        assert plan.tiles_of[0] == [0]

    def test_uneven_tile_count_spreads_evenly(self):
        plan = WorkQueueScheduler().assign([1.0] * 5, 2)
        sizes = sorted(len(t) for t in plan.tiles_of)
        assert sizes == [2, 3]
        assert sorted(i for tiles in plan.tiles_of for i in tiles) == list(range(5))

    def test_work_queue_beats_round_robin_on_uneven_costs(self):
        costs = [10.0, 1.0, 1.0, 1.0]
        queue_plan = WorkQueueScheduler().assign(costs, 2)
        static_plan = shard_round_robin(len(costs), 2)

        def makespan(plan):
            return max(sum(costs[i] for i in tiles) for tiles in plan.tiles_of)

        # Cluster 0 takes the big tile; the queue routes the rest elsewhere.
        assert makespan(queue_plan) == 10.0
        assert makespan(static_plan) == 11.0

    def test_deterministic(self):
        first = WorkQueueScheduler().assign([3.0, 1.0, 2.0, 2.0], 3)
        second = WorkQueueScheduler().assign([3.0, 1.0, 2.0, 2.0], 3)
        assert first.tiles_of == second.tiles_of


class TestSystemConfig:
    def test_rejects_zero_vaults_or_clusters(self):
        with pytest.raises(ValueError):
            SystemConfig(num_vaults=0)
        with pytest.raises(ValueError):
            SystemConfig(clusters_per_vault=0)

    def test_rejects_more_vaults_than_the_cube_has(self):
        with pytest.raises(ValueError):
            SystemConfig(num_vaults=33)

    def test_derived_figures(self):
        config = SystemConfig(num_vaults=2, clusters_per_vault=4)
        assert config.num_clusters == 8
        assert config.peak_flops == 8 * config.cluster.peak_flops
        assert config.hmc_bandwidth_bytes_per_s == pytest.approx(20e9)
        assert config.vault_of_cluster[0] == 0
        assert config.vault_of_cluster[7] == 1


class TestSystemSimulator:
    def test_two_vaults_four_clusters_end_to_end(self):
        simulator = SystemSimulator(SystemConfig(num_vaults=2, clusters_per_vault=4))
        workload = conv_tiled_workload(simulator.hmc, num_tiles=10)
        result = simulator.run(workload.tiles)
        # Every tile executed, results are bit-correct in the shared HMC.
        workload.verify(simulator.hmc)
        assert result.num_tiles == 10
        assert result.makespan_cycles > 0
        assert 0.0 < result.utilization <= 1.0
        assert result.total_flops == sum(t.flops for t in workload.tiles)
        assert result.conflict_probability < 0.2
        # 10 tiles on 8 clusters: nobody takes more than two.
        assert max(len(r.tile_indices) for r in result.reports) <= 2

    def test_empty_workload(self):
        simulator = SystemSimulator(SystemConfig(num_vaults=1, clusters_per_vault=2))
        result = simulator.run([])
        assert result.num_tiles == 0
        assert result.makespan_cycles == 0
        assert result.throughput_flops_per_s == 0.0
        assert result.utilization == 0.0

    def test_single_tile_leaves_clusters_idle(self):
        simulator = SystemSimulator(SystemConfig(num_vaults=2, clusters_per_vault=4))
        workload = conv_tiled_workload(simulator.hmc, num_tiles=1)
        result = simulator.run(workload.tiles)
        workload.verify(simulator.hmc)
        busy = [r for r in result.reports if r.tile_indices]
        assert len(busy) == 1
        assert result.utilization <= 1.0 / 8 + 1e-9

    def test_more_clusters_shrink_the_makespan(self):
        makespans = {}
        for clusters_per_vault in (1, 4):
            config = SystemConfig(num_vaults=2, clusters_per_vault=clusters_per_vault)
            simulator = SystemSimulator(config)
            workload = conv_tiled_workload(simulator.hmc, num_tiles=8)
            makespans[clusters_per_vault] = simulator.run(workload.tiles).makespan_cycles
        assert makespans[4] < makespans[1]

    def test_fewer_vaults_trigger_bandwidth_contention(self):
        """Same cluster count, fewer populated vaults: DMA slows down."""
        results = {}
        for num_vaults, clusters_per_vault in ((2, 4), (1, 8)):
            config = SystemConfig(
                num_vaults=num_vaults, clusters_per_vault=clusters_per_vault
            )
            simulator = SystemSimulator(config)
            workload = conv_tiled_workload(simulator.hmc, num_tiles=16)
            results[num_vaults] = simulator.run(workload.tiles)
            workload.verify(simulator.hmc)
        assert results[2].contention_factor == pytest.approx(1.0)
        assert results[1].contention_factor > 1.0
        assert results[1].makespan_cycles > results[2].makespan_cycles

    def test_more_clusters_than_tiles_leaves_idle_clusters(self):
        """Regression: a mostly-idle system must run, not error out."""
        for parallel in (None, 2):
            config = SystemConfig(num_vaults=2, clusters_per_vault=4)
            simulator, workload, result, _ = _run_system(
                config, num_tiles=3, parallel=parallel
            )
            workload.verify(simulator.hmc)
            assert result.num_tiles == 3
            assert sum(1 for r in result.reports if not r.tile_indices) == 5
            assert len(result.reports) == 8

    def test_empty_workload_with_parallel_requested(self):
        """Regression: no tiles + parallel workers must not spawn or fail."""
        simulator = SystemSimulator(
            SystemConfig(num_vaults=1, clusters_per_vault=2), parallel=4
        )
        result = simulator.run([])
        assert result.num_tiles == 0
        assert result.makespan_cycles == 0
        assert result.workers == 1  # nothing to parallelise over

    def test_scalar_and_vectorized_systems_agree(self):
        """Satellite: SimulationResult parity on a fixed-seed system run."""
        summaries = {}
        for engine in ("scalar", "vectorized"):
            config = SystemConfig(num_vaults=1, clusters_per_vault=2, engine=engine)
            simulator = SystemSimulator(config)
            workload = conv_tiled_workload(simulator.hmc, num_tiles=4, seed=77)
            result = simulator.run(workload.tiles)
            workload.verify(simulator.hmc)
            summaries[engine] = result
        scalar, vectorized = summaries["scalar"], summaries["vectorized"]
        assert vectorized.total_flops == scalar.total_flops
        assert vectorized.makespan_cycles == pytest.approx(
            scalar.makespan_cycles, rel=0.02
        )
        assert vectorized.conflict_probability == pytest.approx(
            scalar.conflict_probability, abs=0.01
        )
        per_tile_scalar = [
            r.cycles for report in scalar.reports for r in report.results
        ]
        per_tile_vectorized = [
            r.cycles for report in vectorized.reports for r in report.results
        ]
        assert per_tile_vectorized == per_tile_scalar


class TestScenarioEngineParity:
    """Satellite: the golden-parity guarantee extended to every registered
    scenario family — scalar and vectorized engines must leave *bit-identical*
    contents in the HMC (the lattice-valued workload data makes every
    intermediate exact in both data planes), and their timing must agree."""

    @pytest.mark.parametrize(
        "name",
        [
            "conv-tiled",
            "matmul-tiled",
            "stencil-laplace2d",
            "dnn-training-step",
            # The compiled (declarative) scenarios ride the same guarantee:
            # coefficient quantization keeps every product dyadic-exact.
            "cstencil-laplace27",
            "cstencil-heat3d",
            "cstencil-gauss-blur",
            "cstencil-bilateral",
            "pipeline-blur-stencil-reduce",
        ],
    )
    def test_scalar_and_vectorized_hmc_contents_are_bit_identical(self, name):
        from repro.cluster.engine import available_engines
        from repro.scenarios import run_scenario

        outcomes = {
            engine: run_scenario(
                name,
                engine=engine,
                num_tiles=2,
                num_vaults=1,
                clusters_per_vault=2,
            )
            for engine in available_engines()
        }
        assert {"scalar", "vectorized"} <= set(outcomes)
        for outcome in outcomes.values():
            assert outcome.verified  # every engine matches the golden model
        reference = outcomes["scalar"]
        for engine, outcome in outcomes.items():
            assert outcome.result.total_flops == reference.result.total_flops
            assert outcome.result.makespan_cycles == pytest.approx(
                reference.result.makespan_cycles, rel=0.02
            )
            for produced, golden in zip(
                outcome.output_arrays(), reference.output_arrays()
            ):
                assert np.array_equal(produced, golden), (name, engine)

    def test_registry_lists_both_engines(self):
        from repro.cluster.engine import available_engines, get_engine

        names = available_engines()
        assert "scalar" in names and "vectorized" in names
        for name in names:
            engine = get_engine(name)
            assert engine.name == name
            assert engine.description


class TestTilingMemoization:
    def test_identical_shapes_share_timing_but_not_data(self):
        """Satellite: same cache key, same timing, distinct bit-exact outputs.

        Two convolution tiles with identical shapes (hence identical command
        streams and DMA layouts) but different input data must hit the same
        timing-cache entry while each still producing its own correct output
        in the HMC.
        """
        config = SystemConfig(num_vaults=1, clusters_per_vault=1)
        simulator, workload, result, outputs = _run_system(config, num_tiles=2)
        assert result.cache_misses == 1
        assert result.cache_hits == 1
        assert result.cache_hit_rate == pytest.approx(0.5)
        # Shared timing: both tiles report the same simulated cycle count.
        report = result.reports[0]
        assert len(report.results) == 2
        assert report.results[0].cycles == report.results[1].cycles
        # Distinct data: outputs are bit-exact per tile, and differ.
        workload.verify(simulator.hmc)
        assert not np.array_equal(outputs[0], outputs[1])
        for produced, (_, expected) in zip(outputs, workload.references):
            np.testing.assert_allclose(produced, expected, rtol=1e-5, atol=1e-6)

    def test_memoized_run_is_identical_to_unmemoized(self):
        """Memoization only skips recomputation — never changes any result."""
        config = SystemConfig(num_vaults=2, clusters_per_vault=2)
        _, _, plain, outputs_plain = _run_system(
            config, num_tiles=10, memoize=False
        )
        _, workload, memoized, outputs_memoized = _run_system(
            config, num_tiles=10, memoize=True
        )
        assert plain.cache_hits == plain.cache_misses == 0
        assert memoized.cache_hits > 0
        assert memoized.makespan_cycles == plain.makespan_cycles
        assert memoized.total_flops == plain.total_flops
        assert memoized.conflict_probability == plain.conflict_probability
        for a, b in zip(outputs_plain, outputs_memoized):
            assert np.array_equal(a, b)  # bit-identical HMC buffers

    def test_scalar_engine_memoized_stays_bit_exact(self):
        """The hit path replays scalar tiles through the exact executor."""
        config = SystemConfig(num_vaults=1, clusters_per_vault=2, engine="scalar")
        _, _, plain, outputs_plain = _run_system(
            config, num_tiles=4, memoize=False, seed=7
        )
        _, _, memoized, outputs_memoized = _run_system(
            config, num_tiles=4, memoize=True, seed=7
        )
        assert memoized.cache_hits > 0
        assert memoized.makespan_cycles == plain.makespan_cycles
        for a, b in zip(outputs_plain, outputs_memoized):
            assert np.array_equal(a, b)

    def test_cache_persists_across_runs(self):
        """A second run of the same workload shape is all cache hits."""
        config = SystemConfig(num_vaults=1, clusters_per_vault=2)
        simulator = SystemSimulator(config)
        first = conv_tiled_workload(simulator.hmc, num_tiles=4)
        result_first = simulator.run(first.tiles)
        assert result_first.cache_misses == 1
        result_second = simulator.run(first.tiles)
        assert result_second.cache_misses == 0
        assert result_second.cache_hits == 4
        assert result_second.makespan_cycles == result_first.makespan_cycles

    def test_timing_signature_ignores_data_but_not_structure(self):
        from dataclasses import replace

        from repro.core.commands import NtxCommand
        from repro.kernels.conv import conv2d_commands

        command = conv2d_commands(6, 8, 3, 0x1000, 0x2000, 0x3000)[0]
        assert isinstance(command, NtxCommand)
        same_structure = replace(command, scalar=42.0)
        assert command.timing_signature == same_structure.timing_signature
        moved = command.with_bases(0x1004, 0x2000, 0x3000)
        assert command.timing_signature != moved.timing_signature


class TestParallelDispatch:
    def test_parallel_run_is_bit_identical_to_sequential(self):
        config = SystemConfig(num_vaults=2, clusters_per_vault=2)
        _, _, sequential, outputs_seq = _run_system(
            config, num_tiles=10, parallel=None
        )
        simulator, workload, parallel, outputs_par = _run_system(
            config, num_tiles=10, parallel=3
        )
        assert parallel.workers == 3
        assert parallel.makespan_cycles == sequential.makespan_cycles
        assert parallel.total_flops == sequential.total_flops
        assert parallel.contention_factor == sequential.contention_factor
        assert [r.tile_indices for r in parallel.reports] == [
            r.tile_indices for r in sequential.reports
        ]
        workload.verify(simulator.hmc)
        for a, b in zip(outputs_seq, outputs_par):
            assert np.array_equal(a, b)  # bit-identical HMC buffers

    def test_parallel_is_deterministic_across_runs(self):
        config = SystemConfig(num_vaults=1, clusters_per_vault=4)
        runs = [
            _run_system(config, num_tiles=9, parallel=2)[2] for _ in range(2)
        ]
        assert runs[0].makespan_cycles == runs[1].makespan_cycles
        assert [r.tile_indices for r in runs[0].reports] == [
            r.tile_indices for r in runs[1].reports
        ]

    def test_parallel_true_uses_at_most_cpu_count(self):
        import os

        config = SystemConfig(num_vaults=2, clusters_per_vault=4)
        _, _, result, _ = _run_system(config, num_tiles=16, parallel=True)
        assert 1 <= result.workers <= max(os.cpu_count() or 1, 1)

    def test_negative_parallel_rejected(self):
        with pytest.raises(ValueError):
            SystemSimulator(SystemConfig(), parallel=-2)


class TestAcceptanceSpeedup:
    def test_memoized_parallel_is_3x_faster_with_identical_outputs(self):
        """Acceptance gate: memoization+parallel >= 3x over the PR-1 path on
        the default config, with bit-identical HMC output buffers.

        The workload is sized so the sequential baseline takes ~1s and the
        accelerated path has plenty of margin even on a loaded single-core
        CI machine; the accelerated run is re-measured (best of up to
        three) to shield the ratio from scheduler noise — a noise spike
        can only slow the accelerated side down, so retrying that side is
        conservative.
        """
        config = SystemConfig()  # the default 2 vaults x 4 clusters
        shape, tiles = (48, 52), 32

        start = time.perf_counter()
        _, _, sequential, outputs_seq = _run_system(
            config, num_tiles=tiles, image_shape=shape, memoize=False
        )
        wall_sequential = time.perf_counter() - start

        wall_fast = math.inf
        for _ in range(3):
            start = time.perf_counter()
            simulator, workload, accelerated, outputs_fast = _run_system(
                config, num_tiles=tiles, image_shape=shape, parallel=2
            )
            wall_fast = min(wall_fast, time.perf_counter() - start)
            if wall_sequential / wall_fast >= 4.0:  # comfortable margin
                break

        assert accelerated.workers == 2
        assert accelerated.cache_hit_rate > 0.5
        assert accelerated.makespan_cycles == sequential.makespan_cycles
        workload.verify(simulator.hmc)
        for a, b in zip(outputs_seq, outputs_fast):
            assert np.array_equal(a, b)  # bit-identical HMC buffers
        speedup = wall_sequential / wall_fast
        assert speedup >= 3.0, (
            f"memoization+parallel speedup {speedup:.2f}x below the 3x gate "
            f"({wall_sequential:.3f}s -> {wall_fast:.3f}s)"
        )
