"""The multi-cluster scale-out subsystem: scheduler edge cases, the
end-to-end system run on a shared HMC, and the bandwidth contention model."""

import numpy as np
import pytest

from repro.system import (
    SystemConfig,
    SystemSimulator,
    WorkQueueScheduler,
    conv_tiled_workload,
    shard_round_robin,
)


class TestWorkQueueScheduler:
    def test_zero_clusters_rejected(self):
        with pytest.raises(ValueError):
            WorkQueueScheduler().assign([1.0, 2.0], 0)
        with pytest.raises(ValueError):
            shard_round_robin(4, 0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            WorkQueueScheduler().assign([1.0, -2.0], 2)

    def test_no_tiles(self):
        plan = WorkQueueScheduler().assign([], 4)
        assert plan.num_assigned == 0
        assert plan.idle_clusters == 4

    def test_one_tile_many_clusters(self):
        plan = WorkQueueScheduler().assign([5.0], 8)
        assert plan.num_assigned == 1
        assert plan.busiest == 1
        assert plan.idle_clusters == 7
        assert plan.tiles_of[0] == [0]

    def test_uneven_tile_count_spreads_evenly(self):
        plan = WorkQueueScheduler().assign([1.0] * 5, 2)
        sizes = sorted(len(t) for t in plan.tiles_of)
        assert sizes == [2, 3]
        assert sorted(i for tiles in plan.tiles_of for i in tiles) == list(range(5))

    def test_work_queue_beats_round_robin_on_uneven_costs(self):
        costs = [10.0, 1.0, 1.0, 1.0]
        queue_plan = WorkQueueScheduler().assign(costs, 2)
        static_plan = shard_round_robin(len(costs), 2)

        def makespan(plan):
            return max(sum(costs[i] for i in tiles) for tiles in plan.tiles_of)

        # Cluster 0 takes the big tile; the queue routes the rest elsewhere.
        assert makespan(queue_plan) == 10.0
        assert makespan(static_plan) == 11.0

    def test_deterministic(self):
        first = WorkQueueScheduler().assign([3.0, 1.0, 2.0, 2.0], 3)
        second = WorkQueueScheduler().assign([3.0, 1.0, 2.0, 2.0], 3)
        assert first.tiles_of == second.tiles_of


class TestSystemConfig:
    def test_rejects_zero_vaults_or_clusters(self):
        with pytest.raises(ValueError):
            SystemConfig(num_vaults=0)
        with pytest.raises(ValueError):
            SystemConfig(clusters_per_vault=0)

    def test_rejects_more_vaults_than_the_cube_has(self):
        with pytest.raises(ValueError):
            SystemConfig(num_vaults=33)

    def test_derived_figures(self):
        config = SystemConfig(num_vaults=2, clusters_per_vault=4)
        assert config.num_clusters == 8
        assert config.peak_flops == 8 * config.cluster.peak_flops
        assert config.hmc_bandwidth_bytes_per_s == pytest.approx(20e9)
        assert config.vault_of_cluster[0] == 0
        assert config.vault_of_cluster[7] == 1


class TestSystemSimulator:
    def test_two_vaults_four_clusters_end_to_end(self):
        simulator = SystemSimulator(SystemConfig(num_vaults=2, clusters_per_vault=4))
        workload = conv_tiled_workload(simulator.hmc, num_tiles=10)
        result = simulator.run(workload.tiles)
        # Every tile executed, results are bit-correct in the shared HMC.
        workload.verify(simulator.hmc)
        assert result.num_tiles == 10
        assert result.makespan_cycles > 0
        assert 0.0 < result.utilization <= 1.0
        assert result.total_flops == sum(t.flops for t in workload.tiles)
        assert result.conflict_probability < 0.2
        # 10 tiles on 8 clusters: nobody takes more than two.
        assert max(len(r.tile_indices) for r in result.reports) <= 2

    def test_empty_workload(self):
        simulator = SystemSimulator(SystemConfig(num_vaults=1, clusters_per_vault=2))
        result = simulator.run([])
        assert result.num_tiles == 0
        assert result.makespan_cycles == 0
        assert result.throughput_flops_per_s == 0.0
        assert result.utilization == 0.0

    def test_single_tile_leaves_clusters_idle(self):
        simulator = SystemSimulator(SystemConfig(num_vaults=2, clusters_per_vault=4))
        workload = conv_tiled_workload(simulator.hmc, num_tiles=1)
        result = simulator.run(workload.tiles)
        workload.verify(simulator.hmc)
        busy = [r for r in result.reports if r.tile_indices]
        assert len(busy) == 1
        assert result.utilization <= 1.0 / 8 + 1e-9

    def test_more_clusters_shrink_the_makespan(self):
        makespans = {}
        for clusters_per_vault in (1, 4):
            config = SystemConfig(num_vaults=2, clusters_per_vault=clusters_per_vault)
            simulator = SystemSimulator(config)
            workload = conv_tiled_workload(simulator.hmc, num_tiles=8)
            makespans[clusters_per_vault] = simulator.run(workload.tiles).makespan_cycles
        assert makespans[4] < makespans[1]

    def test_fewer_vaults_trigger_bandwidth_contention(self):
        """Same cluster count, fewer populated vaults: DMA slows down."""
        results = {}
        for num_vaults, clusters_per_vault in ((2, 4), (1, 8)):
            config = SystemConfig(
                num_vaults=num_vaults, clusters_per_vault=clusters_per_vault
            )
            simulator = SystemSimulator(config)
            workload = conv_tiled_workload(simulator.hmc, num_tiles=16)
            results[num_vaults] = simulator.run(workload.tiles)
            workload.verify(simulator.hmc)
        assert results[2].contention_factor == pytest.approx(1.0)
        assert results[1].contention_factor > 1.0
        assert results[1].makespan_cycles > results[2].makespan_cycles

    def test_scalar_and_vectorized_systems_agree(self):
        """Satellite: SimulationResult parity on a fixed-seed system run."""
        summaries = {}
        for engine in ("scalar", "vectorized"):
            config = SystemConfig(num_vaults=1, clusters_per_vault=2, engine=engine)
            simulator = SystemSimulator(config)
            workload = conv_tiled_workload(simulator.hmc, num_tiles=4, seed=77)
            result = simulator.run(workload.tiles)
            workload.verify(simulator.hmc)
            summaries[engine] = result
        scalar, vectorized = summaries["scalar"], summaries["vectorized"]
        assert vectorized.total_flops == scalar.total_flops
        assert vectorized.makespan_cycles == pytest.approx(
            scalar.makespan_cycles, rel=0.02
        )
        assert vectorized.conflict_probability == pytest.approx(
            scalar.conflict_probability, abs=0.01
        )
        per_tile_scalar = [
            r.cycles for report in scalar.reports for r in report.results
        ]
        per_tile_vectorized = [
            r.cycles for report in vectorized.reports for r in report.results
        ]
        assert per_tile_vectorized == per_tile_scalar
