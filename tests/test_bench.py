"""The benchmark harness: schema validity, deterministic metrics, baseline
gating semantics and the ``python -m repro.bench`` CLI round trip."""

import copy
import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    compare_documents,
    derive_baseline,
    format_document,
    format_report,
    run_suite,
    validate_document,
)
from repro.bench.__main__ import main as bench_main


@pytest.fixture(scope="module")
def quick_documents():
    """One quick run of every suite, shared by the whole module."""
    return [
        run_suite("system", quick=True),
        run_suite("cluster", quick=True),
        run_suite("scenarios", quick=True),
        run_suite("campaigns", quick=True),
        run_suite("report", quick=True),
        run_suite("cache", quick=True),
        run_suite("obs", quick=True),
    ]


class TestRunner:
    def test_documents_are_schema_valid(self, quick_documents):
        for document in quick_documents:
            assert validate_document(document) == []

    def test_system_suite_scenarios(self, quick_documents):
        system = quick_documents[0]
        names = [scenario["name"] for scenario in system["scenarios"]]
        assert names == [
            "system-sequential",
            "system-memoized",
            "system-batched",
            "system-memoized-parallel",
        ]
        by_name = {s["name"]: s for s in system["scenarios"]}
        # All four variants simulate the same machine: identical cycles.
        cycles = {s["simulated_cycles"] for s in system["scenarios"]}
        assert len(cycles) == 1
        assert by_name["system-memoized"]["cache_hit_rate"] > 0.9
        assert by_name["system-batched"]["cache_hit_rate"] > 0.9
        assert by_name["system-batched"]["speedup_vs_memoized"] > 0
        assert by_name["system-memoized-parallel"]["workers"] >= 1

    def test_cluster_suite_scenarios(self, quick_documents):
        cluster = quick_documents[1]
        names = [scenario["name"] for scenario in cluster["scenarios"]]
        assert names == ["cluster-conv-vectorized"]
        assert cluster["scenarios"][0]["simulated_cycles"] > 0

    def test_scenarios_suite_covers_every_registered_scenario(self, quick_documents):
        """Satellite: registered scenarios are perf-gated automatically."""
        from repro.scenarios import registered_scenarios

        scenarios_doc = quick_documents[2]
        names = [scenario["name"] for scenario in scenarios_doc["scenarios"]]
        assert names == [f"scenario-{name}" for name in registered_scenarios()]
        for scenario in scenarios_doc["scenarios"]:
            assert scenario["simulated_cycles"] > 0
            assert 0.0 <= scenario["cache_hit_rate"] <= 1.0

    def test_campaigns_suite_covers_every_registered_campaign(self, quick_documents):
        """A registered campaign is perf-gated automatically."""
        from repro.campaign import get_campaign, registered_campaigns

        campaigns_doc = quick_documents[3]
        names = [scenario["name"] for scenario in campaigns_doc["scenarios"]]
        assert names == [f"campaign-{name}" for name in registered_campaigns()]
        for scenario, name in zip(campaigns_doc["scenarios"], registered_campaigns()):
            assert scenario["simulated_cycles"] > 0
            assert 0.0 <= scenario["cache_hit_rate"] <= 1.0
            expected = len(get_campaign(name).for_quick().expand())
            assert scenario["points"] == expected

    def test_cache_suite_warm_pass_serves_every_point(self, quick_documents):
        """Acceptance: the warm pass of the cache suite simulates nothing
        — a hit rate below 1.0 is a cache defect, not a perf number."""
        cache_doc = quick_documents[5]
        names = [scenario["name"] for scenario in cache_doc["scenarios"]]
        assert names == ["cache-cold", "cache-warm"]
        cold, warm = cache_doc["scenarios"]
        assert cold["points"] == warm["points"] > 0
        # The cold and warm passes simulate the identical design space.
        assert warm["simulated_cycles"] == cold["simulated_cycles"] > 0
        assert warm["cache_hit_rate"] == 1.0
        assert warm["speedup_vs_cold"] > 1.0

    def test_obs_suite_never_perturbs_results(self, quick_documents):
        """Acceptance: enabling instrumentation must not move a cycle."""
        obs_doc = quick_documents[6]
        names = [scenario["name"] for scenario in obs_doc["scenarios"]]
        assert names == ["obs-off", "obs-overhead"]
        off, overhead = obs_doc["scenarios"]
        assert overhead["simulated_cycles"] == off["simulated_cycles"] > 0
        assert overhead["overhead_ratio"] > 0

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError):
            run_suite("nonexistent")

    def test_format_document_mentions_every_scenario(self, quick_documents):
        for document in quick_documents:
            rendered = format_document(document)
            for scenario in document["scenarios"]:
                assert scenario["name"] in rendered


class TestSchema:
    def test_rejects_non_object(self):
        assert validate_document([]) != []

    def test_rejects_wrong_version_and_suite(self):
        problems = validate_document(
            {"schema_version": 99, "suite": "bogus", "quick": True, "scenarios": []}
        )
        assert any("schema_version" in p for p in problems)
        assert any("suite" in p for p in problems)
        assert any("scenarios" in p for p in problems)

    def test_rejects_missing_and_invalid_metrics(self):
        document = {
            "schema_version": SCHEMA_VERSION,
            "suite": "system",
            "quick": True,
            "scenarios": [
                {"name": "a", "wall_time_s": 0.1, "simulated_cycles": 10},
                {"name": "a", "wall_time_s": -1, "simulated_cycles": 10,
                 "cycles_per_second": 1, "cache_hit_rate": 2.0},
            ],
        }
        problems = validate_document(document)
        assert any("missing numeric cycles_per_second" in p for p in problems)
        assert any("duplicates scenario name" in p for p in problems)
        assert any("invalid wall_time_s" in p for p in problems)
        assert any("invalid cache_hit_rate" in p for p in problems)


class TestCompare:
    def test_self_comparison_passes(self, quick_documents):
        baseline = derive_baseline(quick_documents)
        checks, problems = compare_documents(baseline, quick_documents)
        assert problems == []
        assert checks, "baseline produced no gated metrics"
        assert not any(check.regressed for check in checks)

    def test_regression_detected(self, quick_documents):
        baseline = derive_baseline(quick_documents)
        worse = copy.deepcopy(quick_documents)
        for scenario in worse[0]["scenarios"]:
            scenario["simulated_cycles"] *= 2  # >25% worse
        checks, problems = compare_documents(baseline, worse)
        assert problems == []
        regressed = [check for check in checks if check.regressed]
        assert regressed
        assert all(check.metric == "simulated_cycles" for check in regressed)
        assert "REGRESSION" in format_report(checks, problems)

    def test_improvement_is_not_a_regression(self, quick_documents):
        baseline = derive_baseline(quick_documents)
        better = copy.deepcopy(quick_documents)
        for scenario in better[0]["scenarios"]:
            scenario["simulated_cycles"] = max(
                1, scenario["simulated_cycles"] // 2
            )
        checks, _ = compare_documents(baseline, better)
        assert not any(check.regressed for check in checks)

    def test_missing_scenario_is_an_error(self, quick_documents):
        baseline = derive_baseline(quick_documents)
        partial = [copy.deepcopy(quick_documents[1])]  # cluster only
        _, problems = compare_documents(baseline, partial)
        assert any("missing from current results" in p for p in problems)

    def test_missing_metric_is_an_error(self, quick_documents):
        baseline = derive_baseline(quick_documents)
        stripped = copy.deepcopy(quick_documents)
        for scenario in stripped[0]["scenarios"]:
            scenario.pop("cache_hit_rate", None)
        _, problems = compare_documents(baseline, stripped)
        assert any("no longer reports" in p for p in problems)

    def test_tolerance_override(self, quick_documents):
        baseline = derive_baseline(quick_documents)
        slightly_worse = copy.deepcopy(quick_documents)
        for scenario in slightly_worse[0]["scenarios"]:
            scenario["simulated_cycles"] = int(
                scenario["simulated_cycles"] * 1.10
            )
        lax, _ = compare_documents(baseline, slightly_worse, tolerance=0.25)
        strict, _ = compare_documents(baseline, slightly_worse, tolerance=0.05)
        assert not any(c.regressed for c in lax)
        assert any(c.regressed for c in strict)

    def test_empty_baseline_rejected(self, quick_documents):
        _, problems = compare_documents({"gates": {}}, quick_documents)
        assert problems == ["baseline has no gates"]

    def test_unknown_gated_metric_is_reported_not_raised(self, quick_documents):
        """A hand-edited baseline gating a directionless metric must produce
        a clean problem line, not an unhandled exception."""
        baseline = derive_baseline(quick_documents)
        baseline["gates"]["system-memoized-parallel"]["workers"] = 2
        checks, problems = compare_documents(baseline, quick_documents)
        assert any("unknown metric 'workers'" in p for p in problems)
        assert checks  # the well-formed gates were still evaluated


class TestCli:
    def test_run_and_compare_round_trip(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        exit_code = bench_main(
            [
                "--quick",
                "--suite", "cluster",
                "--output-dir", str(tmp_path),
                "--write-baseline", str(baseline_path),
            ]
        )
        assert exit_code == 0
        bench_path = tmp_path / "BENCH_cluster.json"
        assert bench_path.is_file()
        document = json.loads(bench_path.read_text(encoding="utf-8"))
        assert validate_document(document) == []
        assert baseline_path.is_file()

        assert (
            bench_main(
                [
                    "compare",
                    "--baseline", str(baseline_path),
                    str(bench_path),
                ]
            )
            == 0
        )

        # Tampered results must fail the gate.
        document["scenarios"][0]["simulated_cycles"] *= 10
        bad_path = tmp_path / "BENCH_bad.json"
        bad_path.write_text(json.dumps(document), encoding="utf-8")
        assert (
            bench_main(
                ["compare", "--baseline", str(baseline_path), str(bad_path)]
            )
            == 1
        )

    def test_committed_baseline_gates_a_fresh_quick_run(self, quick_documents):
        """The in-repo benchmarks/baseline.json must accept a healthy run."""
        from pathlib import Path

        baseline_file = (
            Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json"
        )
        baseline = json.loads(baseline_file.read_text(encoding="utf-8"))
        checks, problems = compare_documents(baseline, quick_documents)
        assert problems == []
        deterministic = [
            c for c in checks if c.metric in ("simulated_cycles", "cache_hit_rate")
        ]
        assert deterministic
        assert not any(c.regressed for c in deterministic)


class TestBaselineScript:
    def test_dry_run_prints_the_gate_diff_without_writing(self, capsys):
        """Satellite: --dry-run categorises added/removed/changed gates
        and leaves benchmarks/baseline.json untouched."""
        import importlib.util
        from pathlib import Path

        script = (
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "update_bench_baseline.py"
        )
        spec = importlib.util.spec_from_file_location("update_bench_baseline", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        before = module.BASELINE.read_text(encoding="utf-8")
        assert module.main(["--dry-run", "--suite", "cluster"]) == 0
        out = capsys.readouterr().out
        assert "(dry run: baseline not written)" in out
        assert "gate(s) added" in out and "unchanged" in out
        assert "cluster-conv-vectorized/simulated_cycles" in out
        assert module.BASELINE.read_text(encoding="utf-8") == before