"""The campaign subsystem: sweep expansion and constraints, the JSONL
result store, exact resume after interruption, process-pool parity,
cross-engine parity of every shipped campaign family, the global
content-addressed result cache (with sharded execution and deterministic
store merging), and the analysis layer's perf-model overlay."""

import itertools
import json
import multiprocessing

import numpy as np
import pytest

from repro.campaign import (
    CACHE_DIR_ENV,
    GlobalResultCache,
    ResultStore,
    ResultStoreError,
    SweepSpec,
    analyze_records,
    format_report,
    get_campaign,
    iter_campaigns,
    merge_stores,
    order_longest_first,
    point_id,
    register_campaign,
    registered_campaigns,
    resolve_cache,
    run_campaign,
)
from repro.options import ExecutionOptions, parse_shard
from repro.scenarios import ScenarioSpec, run_scenario


def tiny_sweep(**overrides) -> SweepSpec:
    """A 4-point conv sweep small enough to run many times in tests."""
    settings = dict(
        name="tiny",
        description="test sweep",
        base=ScenarioSpec(
            name="tiny-conv",
            family="conv",
            params={"image_shape": (8, 10)},
            num_tiles=2,
            num_vaults=1,
            clusters_per_vault=1,
        ),
        axes={"clusters_per_vault": (1, 2), "num_tiles": (2, 4)},
    )
    settings.update(overrides)
    return SweepSpec(**settings)


class TestSweepSpec:
    def test_dict_round_trip(self):
        sweep = tiny_sweep(
            mode="zip",
            axes={"clusters_per_vault": (1, 2), "num_tiles": (2, 4)},
            constraints=("num_tiles >= clusters_per_vault",),
            quick_overrides={"num_tiles": 1},
        )
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep

    def test_json_round_trip_with_tuple_param_axis(self):
        """JSON turns tuple axis values into lists; normalization keeps
        the round trip an identity (exactly like ScenarioSpec params)."""
        sweep = tiny_sweep(axes={"params.image_shape": ((6, 8), (8, 10))})
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_from_dict_rejects_unknown_fields(self):
        data = tiny_sweep().to_dict()
        data["bogus"] = 1
        with pytest.raises(ValueError, match="bogus"):
            SweepSpec.from_dict(data)

    def test_from_dict_rejects_missing_required_fields(self):
        with pytest.raises(ValueError, match="axes"):
            SweepSpec.from_dict({"name": "x", "base": tiny_sweep().base.to_dict()})

    def test_unknown_axis_path_lists_choices(self):
        with pytest.raises(ValueError, match="num_vaults"):
            tiny_sweep(axes={"cluster_count": (1, 2)})

    def test_name_and_description_are_not_sweepable(self):
        with pytest.raises(ValueError, match="sweepable"):
            tiny_sweep(axes={"name": ("a", "b")})

    def test_unknown_param_axis_lists_family_params(self):
        with pytest.raises(ValueError, match="params.image_shape"):
            tiny_sweep(axes={"params.kernel_size": (3, 5)})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            tiny_sweep(axes={})
        with pytest.raises(ValueError, match="no values"):
            tiny_sweep(axes={"num_tiles": ()})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="grid"):
            tiny_sweep(mode="random")

    def test_zip_requires_equal_lengths(self):
        with pytest.raises(ValueError, match="equal-length"):
            tiny_sweep(
                mode="zip",
                axes={"clusters_per_vault": (1, 2, 4), "num_tiles": (2, 4)},
            )

    def test_constraint_syntax_error_at_construction(self):
        with pytest.raises(ValueError, match="not a valid expression"):
            tiny_sweep(constraints=("num_tiles >=",))

    def test_constraint_unknown_name_at_construction(self):
        with pytest.raises(ValueError, match="accepted names"):
            tiny_sweep(constraints=("warp_factor > 1",))

    @pytest.mark.parametrize(
        "expression",
        [
            "__import__('os').system('true') or True",            # call
            "().__class__.__base__.__subclasses__()",             # attribute
            "[c for c in (1, 2)][0] > 0",                         # comprehension
            "num_tiles.__class__ is int",                         # attribute
            "f'{num_tiles}' == '2'",                              # f-string
        ],
    )
    def test_constraints_are_data_not_code(self, expression):
        """Constraint syntax is an AST-validated subset: anything beyond
        literals/names/operators/comparisons is rejected up front."""
        with pytest.raises(ValueError, match="not allowed"):
            tiny_sweep(constraints=(expression,))

    def test_string_axis_rejected_even_through_from_dict(self):
        """A JSON axis given as a bare string must not be silently split
        into characters."""
        data = tiny_sweep().to_dict()
        data["axes"] = {"engine": "scalar"}
        with pytest.raises(ValueError, match="list or tuple"):
            SweepSpec.from_dict(data)
        with pytest.raises(ValueError, match="list or tuple"):
            tiny_sweep(axes={"engine": "scalar"})

    def test_constraint_type_error_names_the_constraint(self):
        with pytest.raises(ValueError, match="failed to evaluate"):
            tiny_sweep(constraints=("engine <= 16",))

    def test_membership_constraints_are_allowed(self):
        sweep = tiny_sweep(
            axes={"engine": ("scalar", "vectorized"), "num_tiles": (2,)},
            constraints=("engine in ('vectorized',)",),
        )
        assert [p.spec.engine for p in sweep.expand()] == ["vectorized"]

    def test_quick_overrides_round_trip_with_nested_params(self):
        sweep = tiny_sweep(
            quick_overrides={"params": {"image_shape": (6, 8)}}
        )
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_grid_expansion_order_and_count(self):
        points = tiny_sweep().expand()
        assert len(points) == 4
        assert [p.axis_values for p in points] == [
            {"clusters_per_vault": 1, "num_tiles": 2},
            {"clusters_per_vault": 1, "num_tiles": 4},
            {"clusters_per_vault": 2, "num_tiles": 2},
            {"clusters_per_vault": 2, "num_tiles": 4},
        ]

    def test_zip_expansion(self):
        points = tiny_sweep(mode="zip").expand()
        assert [p.axis_values for p in points] == [
            {"clusters_per_vault": 1, "num_tiles": 2},
            {"clusters_per_vault": 2, "num_tiles": 4},
        ]

    def test_constraints_prune_points(self):
        sweep = tiny_sweep(constraints=("num_tiles > clusters_per_vault",))
        kept = [p.axis_values for p in sweep.expand()]
        assert {"clusters_per_vault": 2, "num_tiles": 2} not in kept
        assert len(kept) == 3

    def test_constraints_see_derived_and_param_names(self):
        sweep = tiny_sweep(constraints=("num_clusters <= 1", "kernel == 3"))
        assert all(
            p.axis_values["clusters_per_vault"] == 1 for p in sweep.expand()
        )

    def test_pruning_everything_is_an_error(self):
        with pytest.raises(ValueError, match="no points"):
            tiny_sweep(constraints=("num_tiles > 99",)).expand()

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError, match="same scenario"):
            tiny_sweep(axes={"num_tiles": (2, 2)}).expand()

    def test_unbuildable_point_names_the_constraint_fix(self):
        sweep = tiny_sweep(axes={"num_tiles": (2, -1)})
        with pytest.raises(ValueError, match="prune it with a constraint"):
            sweep.expand()

    def test_point_specs_carry_axis_overrides(self):
        sweep = tiny_sweep(axes={"params.kernel": (3, 5), "num_tiles": (2,)})
        specs = [p.spec for p in sweep.expand()]
        assert [s.merged_params()["kernel"] for s in specs] == [3, 5]
        assert all(s.num_tiles == 2 for s in specs)
        assert len({s.name for s in specs}) == 2  # names encode axis values

    def test_point_ids_are_stable_and_content_addressed(self):
        first, second = tiny_sweep().expand(), tiny_sweep().expand()
        assert [p.id for p in first] == [p.id for p in second]
        spec = first[0].spec
        # Presentation fields do not key the store: renaming a scenario
        # (or its campaign) keeps every stored result resumable.
        assert point_id(spec) == point_id(spec.with_overrides(description="x"))
        assert point_id(spec) == point_id(spec.with_overrides(name="renamed"))
        assert point_id(spec) != point_id(spec.with_overrides(seed=1))
        # Merged params are hashed: spelling a family default explicitly
        # changes nothing, while any effective-parameter change would.
        explicit = spec.with_overrides(params=spec.merged_params())
        assert point_id(spec) == point_id(explicit)
        assert point_id(spec) != point_id(
            spec.with_overrides(params={"kernel": 5})
        )

    def test_quick_shrinks_the_base_never_the_axes(self):
        sweep = tiny_sweep(quick_overrides={"num_tiles": 1, "seed": 3})
        quick = sweep.for_quick()
        assert quick.axes == sweep.axes
        assert quick.base.seed == 3
        assert len(quick.expand()) == len(sweep.expand())
        # Without overrides, quick mode is literally the same campaign.
        assert tiny_sweep().for_quick() == tiny_sweep()

    def test_invalid_quick_overrides_fail_at_construction(self):
        with pytest.raises(ValueError, match="vectorized"):
            tiny_sweep(quick_overrides={"engine": "bogus"})


class TestResultStore:
    def _record(self, pid, **extra):
        record = {"point_id": pid, "metrics": {"makespan_cycles": 1.0}}
        record.update(extra)
        return record

    def test_append_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        assert store.records() == [] and not store.exists()
        store.append(self._record("a"))
        store.append(self._record("b"))
        assert [r["point_id"] for r in store.records()] == ["a", "b"]
        assert store.completed_ids() == {"a", "b"}
        assert [r["point_id"] for r in store.select(["b", "a", "c"])] == ["b", "a"]

    def test_later_appends_win(self, tmp_path):
        store = ResultStore(tmp_path / "s.jsonl")
        store.append(self._record("a", run=1))
        store.append(self._record("a", run=2))
        assert store.by_point()["a"]["run"] == 2

    def test_truncated_last_line_is_skipped(self, tmp_path):
        """The state a killed campaign leaves behind must load cleanly."""
        path = tmp_path / "s.jsonl"
        store = ResultStore(path)
        store.append(self._record("a"))
        store.append(self._record("b"))
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        assert store.completed_ids() == {"a"}
        store.append(self._record("b"))  # resume re-records the lost point
        assert store.completed_ids() == {"a", "b"}

    def test_corrupt_interior_line_raises_with_line_number(self, tmp_path):
        """Damage that cannot come from truncation must not load silently."""
        path = tmp_path / "s.jsonl"
        path.write_text(
            '\n{"point_id": "ok"}\nnot json\n{"point_id": "later"}\n',
            encoding="utf-8",
        )
        with pytest.raises(ResultStoreError, match=r"line 3"):
            ResultStore(path).records()

    def test_interior_record_without_point_id_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            '{"no_id": 1}\n{"point_id": "ok"}\n', encoding="utf-8"
        )
        with pytest.raises(ResultStoreError, match=r"line 1.*point_id"):
            ResultStore(path).completed_ids()

    def test_garbage_final_line_is_tolerated(self, tmp_path):
        """A malformed *last* line is indistinguishable from truncation."""
        path = tmp_path / "s.jsonl"
        path.write_text(
            '{"point_id": "ok"}\n[1, 2]\n', encoding="utf-8"
        )
        assert ResultStore(path).completed_ids() == {"ok"}

    def test_record_without_point_id_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="point_id"):
            ResultStore(tmp_path / "s.jsonl").append({"metrics": {}})


class TestRunCampaign:
    def test_fresh_run_executes_and_verifies_every_point(self, tmp_path):
        outcome = run_campaign(tiny_sweep(), store_path=tmp_path / "s.jsonl")
        assert outcome.executed_points == 4
        assert outcome.skipped_points == 0
        assert outcome.complete
        assert outcome.store_path.is_file()
        assert all(record["verified"] for record in outcome.records)
        assert all(
            record["metrics"]["makespan_cycles"] > 0
            for record in outcome.records
        )

    def test_rerun_skips_every_completed_point(self, tmp_path):
        store = tmp_path / "s.jsonl"
        first = run_campaign(tiny_sweep(), store_path=store)
        before = store.read_text(encoding="utf-8")
        again = run_campaign(tiny_sweep(), store_path=store)
        assert again.executed_points == 0
        assert again.skipped_points == 4
        assert store.read_text(encoding="utf-8") == before  # nothing re-ran
        assert again.records == first.records

    def test_shared_timing_cache_warms_across_points(self, tmp_path):
        outcome = run_campaign(tiny_sweep(), store_path=tmp_path / "s.jsonl")
        hits = sum(r["metrics"]["cache_hits"] for r in outcome.records)
        misses = sum(r["metrics"]["cache_misses"] for r in outcome.records)
        # 12 tiles across the campaign share one timing class: one miss.
        assert misses == 1
        assert hits == 11

    def test_interrupted_campaign_resumes_exactly(self, tmp_path):
        """Satellite: kill mid-grid, rerun, already-stored points are
        skipped and the final store equals an uninterrupted run's."""
        uninterrupted = run_campaign(tiny_sweep(), store_path=tmp_path / "full.jsonl")

        class Kill(Exception):
            pass

        seen = []

        def killer(record, fresh):
            seen.append(record["point_id"])
            if len(seen) == 2:
                raise Kill()

        store = tmp_path / "killed.jsonl"
        with pytest.raises(Kill):
            run_campaign(tiny_sweep(), store_path=store, on_point=killer)
        assert ResultStore(store).completed_ids() == set(seen)

        resumed = run_campaign(tiny_sweep(), store_path=store)
        assert resumed.skipped_points == 2
        assert resumed.executed_points == 2
        assert resumed.complete

        final = {r["point_id"]: r for r in resumed.records}
        reference = {r["point_id"]: r for r in uninterrupted.records}
        assert set(final) == set(reference)
        # Timing-cache accounting is an execution property (the resumed
        # process starts cold), not a simulation result — everything the
        # simulation produced must be identical.
        warmth = ("cache_hits", "cache_misses", "cache_hit_rate")
        for pid, record in reference.items():
            expected = {
                k: v for k, v in record["metrics"].items() if k not in warmth
            }
            got = {
                k: v for k, v in final[pid]["metrics"].items() if k not in warmth
            }
            assert got == expected
            assert final[pid]["spec"] == record["spec"]
            assert final[pid]["verified"]

    def test_max_points_caps_one_call(self, tmp_path):
        store = tmp_path / "s.jsonl"
        partial = run_campaign(tiny_sweep(), store_path=store, max_points=3)
        assert partial.executed_points == 3
        assert not partial.complete
        rest = run_campaign(tiny_sweep(), store_path=store)
        assert rest.executed_points == 1
        assert rest.skipped_points == 3
        assert rest.complete

    @pytest.mark.parametrize("workers", [1, 2])
    def test_process_pool_matches_sequential(self, tmp_path, workers):
        sequential = run_campaign(tiny_sweep(), store_path=tmp_path / "seq.jsonl")
        pooled = run_campaign(
            tiny_sweep(), store_path=tmp_path / "par.jsonl", workers=workers
        )
        assert pooled.executed_points == 4
        seq = {r["point_id"]: r["metrics"] for r in sequential.records}
        par = {r["point_id"]: r["metrics"] for r in pooled.records}
        assert set(seq) == set(par)
        for pid in seq:
            assert seq[pid]["makespan_cycles"] == par[pid]["makespan_cycles"]
            assert seq[pid]["gflops"] == par[pid]["gflops"]

    def test_quick_and_full_use_distinct_points(self, tmp_path):
        sweep = tiny_sweep(quick_overrides={"seed": 99})
        full = run_campaign(sweep, store_path=tmp_path / "s.jsonl")
        quick = run_campaign(sweep, store_path=tmp_path / "s.jsonl", quick=True)
        assert quick.executed_points == 4  # different hashes, no false resume
        assert full.complete and quick.complete

    def test_negative_workers_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            run_campaign(tiny_sweep(), store_path=tmp_path / "s.jsonl", workers=-1)

    def test_on_point_reports_resumed_points_as_not_fresh(self, tmp_path):
        store = tmp_path / "s.jsonl"
        run_campaign(tiny_sweep(), store_path=store)
        calls = []
        run_campaign(
            tiny_sweep(),
            store_path=store,
            on_point=lambda record, fresh: calls.append(fresh),
        )
        assert calls == [False, False, False, False]


def _strip_execution(record):
    """A record minus execution-only fields (warmth counters, wall time).

    Everything left — spec, axes, verification, every simulated metric —
    must be identical across execution paths; only how long it took and
    how warm the tile-timing cache happened to be may differ.
    """
    record = dict(record)
    record.pop("wall_seconds", None)
    warmth = ("cache_hits", "cache_misses", "cache_hit_rate")
    record["metrics"] = {
        k: v for k, v in record["metrics"].items() if k not in warmth
    }
    return record


def _append_records(root, start, count):
    """Worker for the concurrent-append test: put ``count`` records."""
    cache = GlobalResultCache(root)
    for index in range(start, start + count):
        # A constant first hex char forces every record into ONE shard
        # file, so all processes contend on the same fcntl lock.
        cache.put({"point_id": f"a{index:05d}", "metrics": {"n": index}})


class TestGlobalResultCache:
    def _record(self, pid, **extra):
        record = {"point_id": pid, "metrics": {"makespan_cycles": 1.0}}
        record.update(extra)
        return record

    def test_put_get_round_trip_and_counters(self, tmp_path):
        cache = GlobalResultCache(tmp_path / "c")
        assert cache.get("ab12") is None
        assert (cache.hits, cache.misses) == (0, 1)
        stored = cache.put(self._record("ab12", axes={"num_tiles": 2}))
        assert "schema" not in stored  # the stamp is internal
        assert cache.get("ab12") == stored
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.entries() == 1
        stats = cache.stats()
        assert stats == {
            "dir": str(tmp_path / "c"), "entries": 1, "hits": 1, "misses": 1,
        }

    def test_records_shard_by_leading_hex_char(self, tmp_path):
        cache = GlobalResultCache(tmp_path / "c")
        cache.put(self._record("ab"))
        cache.put(self._record("ac"))
        cache.put(self._record("0b"))
        assert cache.shard_path("ab") == cache.shard_path("ac")
        assert cache.shard_path("ab") != cache.shard_path("0b")
        assert cache.shard_path("ab").is_file()
        assert cache.entries() == 3

    def test_fresh_instance_reads_prior_writes(self, tmp_path):
        GlobalResultCache(tmp_path / "c").put(self._record("ab"))
        reader = GlobalResultCache(tmp_path / "c")
        assert reader.get("ab") is not None

    def test_refresh_picks_up_other_writers(self, tmp_path):
        reader = GlobalResultCache(tmp_path / "c")
        assert reader.get("ab") is None  # loads (and caches) an empty shard
        GlobalResultCache(tmp_path / "c").put(self._record("ab"))
        assert reader.get("ab") is None  # warm layer is stale by design
        reader.refresh()
        assert reader.get("ab") is not None

    def test_concurrent_multi_process_appends_interleave_whole_records(
        self, tmp_path
    ):
        """Satellite: N processes hammering one shard lose no records."""
        root = tmp_path / "c"
        workers, per_worker = 4, 25
        context = multiprocessing.get_context("fork")
        processes = [
            context.Process(
                target=_append_records, args=(root, i * per_worker, per_worker)
            )
            for i in range(workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
            assert process.exitcode == 0
        cache = GlobalResultCache(root)
        assert cache.entries() == workers * per_worker
        for index in range(workers * per_worker):
            record = cache.get(f"a{index:05d}")
            assert record is not None and record["metrics"]["n"] == index

    def test_corrupt_shard_line_names_file_and_line(self, tmp_path):
        """Satellite: interior shard damage must not load silently."""
        cache = GlobalResultCache(tmp_path / "c")
        cache.put(self._record("ab"))
        cache.put(self._record("ac"))
        path = cache.shard_path("ab")
        lines = path.read_text(encoding="utf-8").splitlines()
        path.write_text(
            "\n".join(["not json"] + lines) + "\n", encoding="utf-8"
        )
        fresh = GlobalResultCache(tmp_path / "c")
        with pytest.raises(ResultStoreError, match=r"shard-a\.jsonl.*line 1"):
            fresh.get("ab")

    def test_stale_schema_entries_are_invalidated(self, tmp_path, monkeypatch):
        """Satellite: a spec-schema change makes old entries misses."""
        import repro.campaign.cache as cache_mod

        GlobalResultCache(tmp_path / "c").put(self._record("ab"))
        monkeypatch.setattr(
            cache_mod, "spec_schema_version", lambda: "0123456789ab"
        )
        migrated = GlobalResultCache(tmp_path / "c")
        assert migrated.get("ab") is None
        assert migrated.entries() == 0
        # Re-publishing under the new schema serves again — the stale
        # line stays in the file (append-only) but never wins.
        migrated.put(self._record("ab"))
        assert migrated.get("ab") is not None

    def test_resolve_cache_precedence(self, tmp_path, monkeypatch):
        explicit = GlobalResultCache(tmp_path / "explicit")
        options = ExecutionOptions(cache_dir=str(tmp_path / "opt"))
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "env"))
        assert resolve_cache(explicit, options) is explicit
        assert resolve_cache(None, options).root == tmp_path / "opt"
        assert resolve_cache(None, None).root == tmp_path / "env"
        monkeypatch.delenv(CACHE_DIR_ENV)
        assert resolve_cache(None, None) is None
        assert resolve_cache(None, ExecutionOptions()) is None


class TestCampaignResultCache:
    def test_warm_cache_serves_every_point_without_simulation(self, tmp_path):
        cache = GlobalResultCache(tmp_path / "cache")
        cold = run_campaign(
            tiny_sweep(), store_path=tmp_path / "cold.jsonl", cache=cache
        )
        assert cold.executed_points == 4 and cold.cached_points == 0
        warm = run_campaign(
            tiny_sweep(), store_path=tmp_path / "warm.jsonl", cache=cache
        )
        assert warm.executed_points == 0
        assert warm.cached_points == 4
        assert warm.skipped_points == 0
        assert warm.complete
        assert warm.cache_dir == str(tmp_path / "cache")

    def test_cached_results_are_bit_identical_to_cold_run(self, tmp_path):
        """Acceptance: the cached path returns exactly what a cold
        sequential run returns, minus execution-only fields."""
        cache = GlobalResultCache(tmp_path / "cache")
        cold = run_campaign(
            tiny_sweep(), store_path=tmp_path / "cold.jsonl", cache=cache
        )
        warm = run_campaign(
            tiny_sweep(), store_path=tmp_path / "warm.jsonl", cache=cache
        )
        assert [_strip_execution(r) for r in warm.records] == [
            _strip_execution(r) for r in cold.records
        ]

    def test_cache_dir_option_and_env_var_both_activate(
        self, tmp_path, monkeypatch
    ):
        options = ExecutionOptions(cache_dir=str(tmp_path / "cache"))
        run_campaign(tiny_sweep(), store_path=tmp_path / "a.jsonl", options=options)
        via_option = run_campaign(
            tiny_sweep(), store_path=tmp_path / "b.jsonl", options=options
        )
        assert via_option.cached_points == 4
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))
        via_env = run_campaign(tiny_sweep(), store_path=tmp_path / "c.jsonl")
        assert via_env.cached_points == 4
        assert via_env.executed_points == 0

    def test_no_cache_behaves_exactly_as_before(self, tmp_path):
        outcome = run_campaign(tiny_sweep(), store_path=tmp_path / "s.jsonl")
        assert outcome.cache_dir is None
        assert outcome.cached_points == 0
        assert outcome.executed_points == 4

    def test_cache_is_shared_across_renamed_campaigns(self, tmp_path):
        """Content addressing: a different campaign naming the same
        points reuses them, re-presented under its own names."""
        cache = GlobalResultCache(tmp_path / "cache")
        run_campaign(tiny_sweep(), store_path=tmp_path / "a.jsonl", cache=cache)
        renamed = tiny_sweep(name="renamed", description="same content")
        reused = run_campaign(
            renamed, store_path=tmp_path / "b.jsonl", cache=cache
        )
        assert reused.executed_points == 0
        assert reused.cached_points == 4
        # Re-presented under the current sweep's expansion, not the
        # publisher's: names/axes/specs match this run's points exactly.
        by_id = {p.id: p for p in reused.points}
        for record in reused.records:
            point = by_id[record["point_id"]]
            assert record["name"] == point.spec.name
            assert record["axes"] == dict(point.axis_values)
            # Stored specs are JSON round-tripped (tuples -> lists).
            assert record["spec"] == json.loads(json.dumps(point.spec.to_dict()))

    def test_pool_path_populates_and_consumes_the_cache(self, tmp_path):
        cache = GlobalResultCache(tmp_path / "cache")
        pooled = run_campaign(
            tiny_sweep(),
            store_path=tmp_path / "pool.jsonl",
            options=ExecutionOptions(workers=2),
            cache=cache,
        )
        assert pooled.executed_points == 4
        assert cache.entries() == 4
        warm = run_campaign(
            tiny_sweep(),
            store_path=tmp_path / "warm.jsonl",
            options=ExecutionOptions(workers=2),
            cache=cache,
        )
        assert warm.executed_points == 0 and warm.cached_points == 4


class TestShardedExecution:
    @pytest.mark.parametrize(
        "selector", ["", "2/2", "3/2", "-1/2", "1/0", "a/b", "1-2"]
    )
    def test_invalid_shard_selectors_are_rejected(self, selector):
        with pytest.raises(ValueError, match="shard"):
            ExecutionOptions(shard=selector)

    def test_parse_shard_accepts_whitespace_and_zero_index(self):
        assert parse_shard("0/1") == (0, 1)
        assert parse_shard(" 3/8 ") == (3, 8)

    def test_shards_partition_the_sweep(self, tmp_path):
        full = {p.id for p in tiny_sweep().expand()}
        seen = []
        for index in range(3):
            outcome = run_campaign(
                tiny_sweep(),
                store_path=tmp_path / f"s{index}.jsonl",
                options=ExecutionOptions(shard=f"{index}/3"),
            )
            assert outcome.shard == f"{index}/3"
            assert outcome.complete  # complete means shard-local complete
            seen.append({p.id for p in outcome.points})
        for first, second in itertools.combinations(seen, 2):
            assert not (first & second)
        assert set().union(*seen) == full

    def test_single_shard_is_the_whole_sweep(self, tmp_path):
        outcome = run_campaign(
            tiny_sweep(),
            store_path=tmp_path / "s.jsonl",
            options=ExecutionOptions(shard="0/1"),
        )
        assert len(outcome.points) == 4

    def test_merged_shards_equal_an_unsharded_run(self, tmp_path):
        """Acceptance: shard, merge, and the result matches a cold
        sequential run bit-for-bit (minus execution-only fields)."""
        reference = run_campaign(tiny_sweep(), store_path=tmp_path / "ref.jsonl")
        shards = []
        for index in range(2):
            path = tmp_path / f"shard{index}.jsonl"
            run_campaign(
                tiny_sweep(),
                store_path=path,
                options=ExecutionOptions(shard=f"{index}/2"),
            )
            shards.append(path)
        merged = tmp_path / "merged.jsonl"
        assert merge_stores(merged, shards) == 4
        by_point = ResultStore(merged).by_point()
        for record in reference.records:
            assert _strip_execution(by_point[record["point_id"]]) == (
                _strip_execution(record)
            )

    def test_merge_is_deterministic_for_any_shard_order(self, tmp_path):
        """Satellite: merging shards in any order is byte-identical.

        Stores are built by splitting one full run round-robin, so every
        input file exists regardless of how point ids hash into shards.
        """
        outcome = run_campaign(tiny_sweep(), store_path=tmp_path / "full.jsonl")
        paths = [tmp_path / f"shard{index}.jsonl" for index in range(3)]
        for index, record in enumerate(outcome.records):
            ResultStore(paths[index % 3]).append(record)
        outputs = set()
        for order in itertools.permutations(paths):
            target = tmp_path / "merged.jsonl"
            merge_stores(target, order)
            outputs.add(target.read_bytes())
        assert len(outputs) == 1

    def test_merge_deduplicates_overlapping_stores(self, tmp_path):
        full_a = tmp_path / "a.jsonl"
        full_b = tmp_path / "b.jsonl"
        run_campaign(tiny_sweep(), store_path=full_a)
        run_campaign(tiny_sweep(), store_path=full_b)
        merged = tmp_path / "m.jsonl"
        assert merge_stores(merged, [full_a, full_b]) == 4
        assert len(ResultStore(merged).records()) == 4

    def test_merge_missing_input_is_an_error(self, tmp_path):
        present = tmp_path / "a.jsonl"
        ResultStore(present).append({"point_id": "x"})
        with pytest.raises(ValueError, match="does not exist"):
            merge_stores(tmp_path / "m.jsonl", [present, tmp_path / "ghost.jsonl"])


class TestCostAwarePool:
    def test_order_longest_first_is_deterministic_and_complete(self):
        points = tiny_sweep().expand()
        ordered = order_longest_first(points, {})
        assert sorted(p.id for p in ordered) == sorted(p.id for p in points)
        assert [p.id for p in order_longest_first(points, {})] == [
            p.id for p in ordered
        ]

    def test_order_longest_first_puts_big_geometry_first(self):
        points = tiny_sweep().expand()
        ordered = order_longest_first(points, {})
        weights = [
            p.spec.num_tiles * p.spec.num_vaults * p.spec.clusters_per_vault
            for p in ordered
        ]
        assert weights == sorted(weights, reverse=True)

    def test_known_records_reorder_by_measured_rate(self, tmp_path):
        outcome = run_campaign(tiny_sweep(), store_path=tmp_path / "s.jsonl")
        known = {r["point_id"]: r for r in outcome.records}
        ordered = order_longest_first(tiny_sweep().expand(), known)
        # Rates only scale the geometry weight uniformly, so the LPT
        # order survives — and stays deterministic — with history.
        assert [p.id for p in ordered] == [
            p.id for p in order_longest_first(tiny_sweep().expand(), {})
        ]

    def test_work_stealing_pool_matches_cold_sequential_run(self, tmp_path):
        """Acceptance: the LPT + work-stealing pool is bit-identical to
        a cold sequential run (the extended parity matrix)."""
        reference = run_campaign(tiny_sweep(), store_path=tmp_path / "ref.jsonl")
        pooled = run_campaign(
            tiny_sweep(),
            store_path=tmp_path / "pool.jsonl",
            options=ExecutionOptions(workers=2),
        )
        assert pooled.executed_points == 4
        expected = {
            r["point_id"]: _strip_execution(r) for r in reference.records
        }
        got = {r["point_id"]: _strip_execution(r) for r in pooled.records}
        assert got == expected


class TestRegistry:
    def test_shipped_campaigns_are_registered(self):
        assert set(registered_campaigns()) >= {
            "conv-geometry-sweep",
            "engine-shootout",
            "dnn-scaling",
        }

    def test_unknown_campaign_lists_choices(self):
        with pytest.raises(ValueError, match="conv-geometry-sweep"):
            get_campaign("does-not-exist")

    def test_duplicate_registration_rejected(self):
        sweep = get_campaign("conv-geometry-sweep")
        with pytest.raises(ValueError, match="already registered"):
            register_campaign(sweep)
        assert register_campaign(sweep, replace=True) is sweep

    def test_every_shipped_campaign_expands_in_both_modes(self):
        for sweep in iter_campaigns():
            assert len(sweep.expand()) >= 2
            assert len(sweep.for_quick().expand()) == len(sweep.expand())

    def test_conv_geometry_sweep_quick_expands_enough_points(self):
        """Acceptance: the quick sweep covers >= 8 design points."""
        assert len(get_campaign("conv-geometry-sweep").for_quick().expand()) >= 8

    def test_geometry_sweep_constraint_prunes_the_oversized_corner(self):
        points = get_campaign("conv-geometry-sweep").expand()
        assert all(
            p.spec.num_vaults * p.spec.clusters_per_vault <= 16 for p in points
        )
        assert len(points) == 11  # 3x4 grid minus the 32-cluster corner


class TestCrossEngineParity:
    """Satellite: every campaign point family is bit-identical across
    engines at the smallest grid point."""

    @pytest.mark.parametrize(
        "name", ["conv-geometry-sweep", "engine-shootout", "dnn-scaling"]
    )
    def test_smallest_point_is_bit_identical_across_engines(self, name):
        points = get_campaign(name).for_quick().expand()
        smallest = min(
            points,
            key=lambda p: (
                p.spec.num_tiles,
                p.spec.num_vaults * p.spec.clusters_per_vault,
            ),
        )
        outputs = {}
        for engine in ("scalar", "vectorized"):
            outcome = run_scenario(smallest.spec, engine=engine)
            outputs[engine] = outcome.output_arrays()
        for scalar_out, vectorized_out in zip(
            outputs["scalar"], outputs["vectorized"]
        ):
            assert np.array_equal(scalar_out, vectorized_out)


@pytest.fixture(scope="module")
def geometry_outcome(tmp_path_factory):
    """One quick conv-geometry-sweep run, shared by the analysis tests."""
    store = tmp_path_factory.mktemp("campaign") / "geometry.jsonl"
    return run_campaign("conv-geometry-sweep", store_path=store, quick=True)


class TestAnalysis:
    def test_rows_cover_every_point(self, geometry_outcome):
        rows = analyze_records(geometry_outcome.records)
        assert len(rows) == len(geometry_outcome.points)
        assert all(row.verified for row in rows)

    def test_throughput_plateaus_with_geometry(self, geometry_outcome):
        """Acceptance: at fixed vault bandwidth, added clusters stop
        paying — the simulated Table-II plateau."""
        rows = analyze_records(geometry_outcome.records)
        single_vault = [r for r in rows if r.vaults == 1]
        assert max(r.clusters for r in single_vault) == 8
        assert any(r.plateau for r in single_vault)
        top = max(single_vault, key=lambda r: r.clusters)
        # A plateaued point saturates its modelled bandwidth roof.
        assert top.model_bound_by == "bandwidth"
        assert top.gflops == pytest.approx(top.model_bound_gflops, rel=0.02)

    def test_speedup_is_relative_to_the_fewest_cluster_point(
        self, geometry_outcome
    ):
        rows = analyze_records(geometry_outcome.records)
        base = min(rows, key=lambda r: r.clusters)
        assert base.speedup == 1.0
        assert all(row.speedup >= 1.0 for row in rows)
        assert max(row.speedup for row in rows) > 2.0

    def test_model_overlay_fields_are_populated(self, geometry_outcome):
        rows = analyze_records(geometry_outcome.records)
        for row in rows:
            assert row.operational_intensity > 0
            assert row.model_bound_gflops > 0
            assert row.model_bound_by in ("compute", "bandwidth")
            assert row.model_efficiency_gops_w > 0

    def test_format_report_names_the_plateau(self, geometry_outcome):
        report = format_report(analyze_records(geometry_outcome.records))
        assert "plateau" in report
        assert "verified against their golden models" in report
        assert "Gop/s/W" in report

    def test_empty_records_render_a_hint(self):
        assert "run the campaign" in format_report(analyze_records([]))

    def test_weak_scaling_zip_campaign_forms_one_series(self, tmp_path):
        """dnn-scaling grows tiles with clusters; the analysis must still
        see one scaling curve, with work-normalized speedups near the
        cluster ratio (perfect weak scaling)."""
        outcome = run_campaign(
            "dnn-scaling", store_path=tmp_path / "dnn.jsonl", quick=True
        )
        rows = analyze_records(outcome.records)
        assert len({row.series for row in rows}) == 1
        base = min(rows, key=lambda r: r.clusters)
        for row in rows:
            ratio = row.clusters / base.clusters
            assert row.speedup == pytest.approx(ratio, rel=0.05)
            assert row.parallel_efficiency == pytest.approx(1.0, rel=0.05)

    def test_analysis_round_trips_through_json(self, geometry_outcome):
        """Stored records are plain JSON; analysis must work on a reload."""
        text = "\n".join(
            json.dumps(record) for record in geometry_outcome.records
        )
        reloaded = [json.loads(line) for line in text.splitlines()]
        rows = analyze_records(reloaded)
        assert len(rows) == len(geometry_outcome.records)
