"""Unit tests for the hardware-loop cascade and the address generation units."""

import pytest

from repro.core.agu import AddressGenerationUnit
from repro.core.commands import AguConfig, LoopConfig
from repro.core.hwloop import HardwareLoopNest


class TestHardwareLoops:
    def test_single_loop_sequence(self):
        nest = HardwareLoopNest(LoopConfig.nest(3))
        steps = list(nest)
        assert [s.indices for s in steps] == [(0,), (1,), (2,)]
        assert steps[-1].done

    def test_cascade_wrap_levels(self):
        nest = HardwareLoopNest(LoopConfig.nest(2, 2))
        wrap_levels = [s.wrap_level for s in nest]
        # it.0: loop0 advances; it.1: loop0 wraps -> loop1 advances; ...
        assert wrap_levels == [0, 1, 0, 2]

    def test_first_and_last_of_level(self):
        nest = HardwareLoopNest(LoopConfig.nest(2, 2))
        steps = list(nest)
        # first_of_level[1] is True at the start of each loop-1 block.
        assert [s.first_of_level[1] for s in steps] == [True, False, True, False]
        # last_of_level[1] is True at the end of each loop-1 block.
        assert [s.last_of_level[1] for s in steps] == [False, True, False, True]
        # Level 0 blocks are single iterations: always first and last.
        assert all(s.first_of_level[0] and s.last_of_level[0] for s in steps)

    def test_total_iterations(self):
        nest = HardwareLoopNest(LoopConfig.nest(3, 4, 5))
        assert nest.total_iterations == 60
        assert sum(1 for _ in nest) == 60

    def test_step_after_done_raises(self):
        nest = HardwareLoopNest(LoopConfig.nest(1))
        nest.step()
        with pytest.raises(RuntimeError):
            nest.step()

    def test_reset(self):
        nest = HardwareLoopNest(LoopConfig.nest(2))
        nest.step()
        nest.reset()
        assert nest.indices == (0,)
        assert not nest.done

    def test_counter_width_enforced(self):
        # 2^16 iterations fit the 16 bit counter (counts up to max-1).
        HardwareLoopNest(LoopConfig.nest(1 << 16))


class TestAddressGeneration:
    def test_linear_walk(self):
        agu = AddressGenerationUnit(AguConfig(base=0x1000, strides=(4, 0, 0, 0, 0)))
        addresses = [agu.address]
        for _ in range(3):
            agu.advance(0)
            addresses.append(agu.address)
        assert addresses == [0x1000, 0x1004, 0x1008, 0x100C]

    def test_level_selects_stride(self):
        agu = AddressGenerationUnit(AguConfig(base=0, strides=(4, 100, 0, 0, 0)))
        agu.advance(0)
        agu.advance(1)
        assert agu.address == 104

    def test_negative_stride_and_wraparound(self):
        agu = AddressGenerationUnit(AguConfig(base=0, strides=(-4, 0, 0, 0, 0)))
        agu.advance(0)
        assert agu.address == (1 << 32) - 4  # 32 bit adder wraps

    def test_wrap_level_beyond_strides_is_noop(self):
        agu = AddressGenerationUnit(AguConfig(base=8, strides=(4, 4, 4, 4, 4)))
        assert agu.advance(5) == 8

    def test_peek_does_not_advance(self):
        agu = AddressGenerationUnit(AguConfig(base=0, strides=(4, 0, 0, 0, 0)))
        assert agu.peek(0) == 4
        assert agu.address == 0

    def test_reset(self):
        agu = AddressGenerationUnit(AguConfig(base=12, strides=(4, 0, 0, 0, 0)))
        agu.advance(0)
        agu.reset()
        assert agu.address == 12
        assert agu.advances == 0

    def test_invalid_wrap_level(self):
        agu = AddressGenerationUnit(AguConfig())
        with pytest.raises(ValueError):
            agu.advance(-1)


class TestStridedAccessPatterns:
    """The AGU + loop combination must walk classic access patterns correctly."""

    def _walk(self, loops: LoopConfig, agu_config: AguConfig):
        nest = HardwareLoopNest(loops)
        agu = AddressGenerationUnit(agu_config)
        addresses = []
        for step in nest:
            addresses.append(agu.address)
            agu.advance(step.wrap_level)
        return addresses

    def test_row_major_matrix_walk(self):
        # 3 rows x 4 columns of a matrix with 32-byte row pitch.
        loops = LoopConfig.nest(4, 3)
        agu = AguConfig(base=0, strides=(4, 32 - 3 * 4, 0, 0, 0))
        addresses = self._walk(loops, agu)
        expected = [row * 32 + col * 4 for row in range(3) for col in range(4)]
        assert addresses == expected

    def test_stationary_operand(self):
        loops = LoopConfig.nest(5, 2)
        addresses = self._walk(loops, AguConfig.stationary(0x40))
        assert addresses == [0x40] * 10

    def test_rewinding_vector_operand(self):
        # The x vector of a GEMV is re-read for every row.
        loops = LoopConfig.nest(4, 2)
        agu = AguConfig(base=0, strides=(4, -(4 - 1) * 4, 0, 0, 0))
        addresses = self._walk(loops, agu)
        assert addresses == [0, 4, 8, 12, 0, 4, 8, 12]
